// PCB laminate materials and the PSVAA stripline stackup (paper Fig. 7c).
//
// The paper's tag uses two Rogers 4350B cores bonded by a Rogers 4450F
// prepreg, with the transmission lines running as striplines between two
// ground planes. The material parameters (relative permittivity eps_r and
// loss tangent tan_delta) set the guided wavelength and the per-length
// loss, which in turn set every design rule in Sec. 4.
#pragma once

#include <string>

namespace ros::em {

/// A laminate/prepreg material layer.
struct Laminate {
  std::string name;
  double epsilon_r = 1.0;   ///< relative permittivity
  double tan_delta = 0.0;   ///< dielectric loss tangent
  double thickness_m = 0.0; ///< layer thickness
};

/// Rogers 4350B core (paper: eps_r = 3.66, tan_delta = 0.0037).
Laminate rogers_4350b(double thickness_m);

/// Rogers 4450F prepreg (paper: eps_r = 3.52, tan_delta = 0.004).
Laminate rogers_4450f(double thickness_m);

/// The 4-layer PSVAA stackup: patch copper / 4350B 254 um / GND /
/// 4350B 101 um + 4450F bond / stripline / GND (Fig. 7c).
///
/// Exposes the effective transmission-line medium. The paper anchors the
/// guided wavelength at lambda_g = 2027 um at 79 GHz; we derive the
/// effective permittivity from a thickness-weighted blend of the core and
/// prepreg and calibrate a small correction factor so the anchor holds
/// exactly (documented substitution for the HFSS extraction).
class StriplineStackup {
 public:
  /// Builds the paper's default stackup.
  static StriplineStackup ros_default();

  /// Custom stackup from explicit layers surrounding the stripline.
  StriplineStackup(Laminate core_a, Laminate bond, Laminate core_b);

  /// Effective relative permittivity seen by the stripline. Striplines
  /// are TEM and essentially dispersion-free, so this is frequency
  /// independent.
  double effective_permittivity() const { return eps_eff_; }

  /// Effective loss tangent (thickness-weighted).
  double effective_tan_delta() const { return tan_delta_eff_; }

  /// Guided wavelength at `hz` [m].
  double guided_wavelength(double hz) const;

  /// Phase constant beta = 2*pi / lambda_g at `hz` [rad/m].
  double phase_constant(double hz) const;

  /// Total attenuation (dielectric + conductor) at `hz` [dB/m].
  ///
  /// Dielectric part from tan_delta; conductor part follows sqrt(f) skin
  /// effect, calibrated so the total at 79 GHz matches the paper's anchor
  /// of ~11 dB per 10.8 cm (Sec. 4.3).
  double attenuation_db_per_m(double hz) const;

 private:
  Laminate core_a_;
  Laminate bond_;
  Laminate core_b_;
  double eps_eff_ = 1.0;
  double tan_delta_eff_ = 0.0;
  double conductor_loss_coeff_ = 0.0;  // dB/m at 1 Hz, scaled by sqrt(f)
};

}  // namespace ros::em
