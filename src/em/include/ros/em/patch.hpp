// Aperture-coupled rectangular patch antenna element (paper Fig. 7a/7b).
//
// The PSVAA's radiating elements are rectangular patches coupled to the
// buried stripline through H-shaped apertures. We model:
//   * the patch geometry synthesis (standard cavity-model formulas, the
//     analytic stand-in for the paper's HFSS parametric sweeps),
//   * the element radiation pattern (cos^q taper, which bounds the VAA
//     field of view at ~120 deg, Fig. 4a),
//   * the input match s11(f) as a single-resonance model whose Q is
//     chosen so |s11| <= -10 dB across 77-81 GHz (the paper's
//     optimization target), and
//   * the aperture-coupling stub efficiency (optimal stub 837.5 um).
#pragma once

#include "ros/common/units.hpp"
#include "ros/em/material.hpp"
#include "ros/em/polarization.hpp"

namespace ros::em {

using ros::common::cplx;

/// Synthesized rectangular patch dimensions.
struct PatchDesign {
  double width_m = 0.0;        ///< radiating edge width W
  double length_m = 0.0;       ///< resonant length L
  double eps_effective = 1.0;  ///< effective permittivity under the patch
  double fringing_m = 0.0;     ///< fringing extension delta-L per edge
};

/// Standard cavity-model synthesis of a rectangular patch resonant at
/// `f0_hz` on `substrate` (Balanis). Returns dimensions comparable to the
/// paper's Fig. 7a annotations (~0.85-1.2 mm at 79 GHz on 4350B).
PatchDesign design_rectangular_patch(double f0_hz, const Laminate& substrate);

/// Radiating patch element.
class PatchAntenna {
 public:
  struct Params {
    double resonant_hz = 79e9;
    /// Field-pattern exponent: element field ~ cos(theta)^q. q = 0.65
    /// reproduces the ~8 dB RCS droop at +/-60 deg seen in Fig. 4a.
    double pattern_exponent = 0.65;
    /// Loaded Q of the input match; Q ~= 12 yields |s11| < -10 dB over
    /// 77-81 GHz as the paper's optimization achieved.
    double quality_factor = 12.0;
    Polarization polarization = Polarization::horizontal;
  };

  explicit PatchAntenna(Params p);

  /// Element this patch would be after a 90 deg rotation (the PSVAA
  /// construction, Sec. 4.2).
  PatchAntenna rotated() const;

  Polarization polarization() const { return params_.polarization; }

  /// Normalized field pattern (0..1) at angle `theta_rad` off boresight.
  /// Front hemisphere only: back lobes return 0.
  double field_pattern(double theta_rad) const;

  /// Input reflection coefficient at `hz` (single-resonance model).
  cplx s11(double hz) const;

  /// Fraction of incident power accepted (1 - |s11|^2).
  double match_efficiency(double hz) const;

  /// Complex element response: pattern * sqrt(match efficiency), as a
  /// field amplitude. This is applied once on receive and once on
  /// re-radiation in the VAA model.
  cplx element_response(double theta_rad, double hz) const;

 private:
  Params params_;
};

/// H-shaped aperture coupling between stripline and patch.
///
/// The coupling is matched when the open stub beyond the aperture presents
/// the conjugate reactance; the paper's HFSS optimum is an 837.5 um stub
/// terminating 25 um from the patch edge. We model the efficiency as
/// cos^2 of the electrical-length error relative to that optimum, which
/// the DE optimizer can search over (the HFSS-sweep substitution).
class ApertureCoupling {
 public:
  ApertureCoupling(double stub_length_m, const StriplineStackup* stackup);

  /// Power coupling efficiency in (0, 1] at `hz`.
  double efficiency(double hz) const;

  /// The paper's optimized stub length [m].
  static constexpr double kOptimalStub79GHz = 837.5e-6;

 private:
  double stub_length_m_;
  const StriplineStackup* stackup_;
};

}  // namespace ros::em
