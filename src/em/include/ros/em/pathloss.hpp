// Radar range equation (paper Eq. 1) and derived link quantities.
#pragma once

namespace ros::em {

/// Round-trip received power for a monostatic radar, paper Eq. (1):
///
///   P_r = P_t * G_t * G_r * lambda^2 * sigma / ((4 pi)^3 * d^4)
///
/// All gains/powers in dB/dBm, `sigma_dbsm` in dBsm, `lambda_m` and
/// `distance_m` in metres. `extra_loss_db` folds in two-way atmospheric
/// attenuation (e.g. fog).
double received_power_dbm(double tx_power_dbm, double tx_gain_db,
                          double rx_gain_db, double lambda_m,
                          double sigma_dbsm, double distance_m,
                          double extra_loss_db = 0.0);

/// One-way field amplitude factor corresponding to the equation above:
/// the linear field scale such that amplitude^2 equals the received power
/// in watts. Convenience for waveform-level synthesis.
double received_amplitude(double tx_power_dbm, double tx_gain_db,
                          double rx_gain_db, double lambda_m,
                          double sigma_dbsm, double distance_m,
                          double extra_loss_db = 0.0);

/// Maximum distance at which P_r >= `noise_floor_dbm` + `margin_db`,
/// inverting Eq. (1) for d. Returns metres.
double max_detection_range(double tx_power_dbm, double tx_gain_db,
                           double rx_gain_db, double lambda_m,
                           double sigma_dbsm, double noise_floor_dbm,
                           double margin_db = 0.0);

}  // namespace ros::em
