// Stripline transmission-line segment model.
//
// Van Atta retroreflection relies on the interconnecting transmission
// lines (TLs) having equal phase modulo 2*pi at the design frequency but
// *unequal physical lengths* -- off-center frequencies then de-phase,
// which drives the bandwidth design rule of Sec. 4.1 and the antenna-pair
// optimum of Fig. 3. This class gives exact complex transfer through a
// line of a given length over the stackup medium.
#pragma once

#include "ros/common/units.hpp"
#include "ros/em/material.hpp"

namespace ros::em {

using ros::common::cplx;

class TransmissionLine {
 public:
  /// Line of physical length `length_m` over `stackup` (not owned; must
  /// outlive the line).
  TransmissionLine(double length_m, const StriplineStackup* stackup);

  double length() const { return length_m_; }

  /// Electrical phase accumulated through the line at `hz` [rad].
  double phase(double hz) const;

  /// Attenuation through the line at `hz` [dB].
  double loss_db(double hz) const;

  /// Complex field transfer factor: amplitude 10^(-loss/20), phase
  /// exp(-j*beta*L).
  cplx transfer(double hz) const;

  /// Extends the line by `delta_m` (used to realize beam-shaping phase
  /// weights, Sec. 4.3).
  TransmissionLine extended(double delta_m) const;

 private:
  double length_m_;
  const StriplineStackup* stackup_;
};

}  // namespace ros::em
