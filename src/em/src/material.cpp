#include "ros/em/material.hpp"

#include <cmath>

#include "ros/common/band.hpp"
#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::em {

using namespace ros::common;

namespace {

/// Paper anchor: lambda_g = 2027 um at 79 GHz (Sec. 4.2). The implied
/// effective permittivity is (c / (f * lambda_g))^2 ~= 3.505.
constexpr double kGuidedWavelengthAnchor = 2027e-6;

/// Paper anchor: an 10.8 cm stripline loses ~11 dB (Sec. 4.3), i.e.
/// ~101.9 dB/m total attenuation at 79 GHz.
constexpr double kTotalLossAnchorDbPerM = 11.0 / 0.108;

}  // namespace

Laminate rogers_4350b(double thickness_m) {
  return {"Rogers 4350B", 3.66, 0.0037, thickness_m};
}

Laminate rogers_4450f(double thickness_m) {
  return {"Rogers 4450F", 3.52, 0.004, thickness_m};
}

StriplineStackup StriplineStackup::ros_default() {
  return StriplineStackup(rogers_4350b(254e-6), rogers_4450f(101e-6),
                          rogers_4350b(101e-6));
}

StriplineStackup::StriplineStackup(Laminate core_a, Laminate bond,
                                   Laminate core_b)
    : core_a_(std::move(core_a)),
      bond_(std::move(bond)),
      core_b_(std::move(core_b)) {
  const double total = core_a_.thickness_m + bond_.thickness_m +
                       core_b_.thickness_m;
  ROS_EXPECT(total > 0.0, "stackup must have positive thickness");
  const double blend_eps = (core_a_.epsilon_r * core_a_.thickness_m +
                            bond_.epsilon_r * bond_.thickness_m +
                            core_b_.epsilon_r * core_b_.thickness_m) /
                           total;
  tan_delta_eff_ = (core_a_.tan_delta * core_a_.thickness_m +
                    bond_.tan_delta * bond_.thickness_m +
                    core_b_.tan_delta * core_b_.thickness_m) /
                   total;

  // Calibrate against the paper's extracted guided wavelength: the blend
  // over-estimates eps_eff slightly because field energy concentrates in
  // the lower-permittivity bond layer around the trace. The correction
  // factor (~0.97 for the default stackup) is derived once from the
  // lambda_g anchor and then applied to any custom stackup.
  const double anchor_eps =
      std::pow(kSpeedOfLight / (kDesignFrequency * kGuidedWavelengthAnchor), 2);
  const double default_blend =
      (3.66 * 254e-6 + 3.52 * 101e-6 + 3.66 * 101e-6) / (456e-6);
  eps_eff_ = blend_eps * (anchor_eps / default_blend);

  // Conductor loss: alpha_c = k * sqrt(f). Calibrate k so that
  // alpha_d(79 GHz) + alpha_c(79 GHz) equals the paper's total loss
  // anchor for the default material set; the dielectric part scales with
  // this stackup's own tan_delta.
  const double alpha_d_79 =
      20.0 / std::log(10.0) * kPi * kDesignFrequency * std::sqrt(eps_eff_) *
      tan_delta_eff_ / kSpeedOfLight;
  const double alpha_c_79 = kTotalLossAnchorDbPerM - alpha_d_79;
  ROS_EXPECT(alpha_c_79 > 0.0, "conductor loss anchor must be positive");
  conductor_loss_coeff_ = alpha_c_79 / std::sqrt(kDesignFrequency);
}

double StriplineStackup::guided_wavelength(double hz) const {
  ROS_EXPECT(hz > 0.0, "frequency must be positive");
  return kSpeedOfLight / (hz * std::sqrt(eps_eff_));
}

double StriplineStackup::phase_constant(double hz) const {
  return 2.0 * kPi / guided_wavelength(hz);
}

double StriplineStackup::attenuation_db_per_m(double hz) const {
  ROS_EXPECT(hz > 0.0, "frequency must be positive");
  const double alpha_d = 20.0 / std::log(10.0) * kPi * hz *
                         std::sqrt(eps_eff_) * tan_delta_eff_ /
                         kSpeedOfLight;
  const double alpha_c = conductor_loss_coeff_ * std::sqrt(hz);
  return alpha_d + alpha_c;
}

}  // namespace ros::em
