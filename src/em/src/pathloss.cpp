#include "ros/em/pathloss.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::em {

using namespace ros::common;

double received_power_dbm(double tx_power_dbm, double tx_gain_db,
                          double rx_gain_db, double lambda_m,
                          double sigma_dbsm, double distance_m,
                          double extra_loss_db) {
  ROS_EXPECT(lambda_m > 0.0, "wavelength must be positive");
  ROS_EXPECT(distance_m > 0.0, "distance must be positive");
  const double spreading_db =
      10.0 * std::log10(std::pow(4.0 * kPi, 3) * std::pow(distance_m, 4));
  const double lambda_db = 20.0 * std::log10(lambda_m);
  return tx_power_dbm + tx_gain_db + rx_gain_db + lambda_db + sigma_dbsm -
         spreading_db - extra_loss_db;
}

double received_amplitude(double tx_power_dbm, double tx_gain_db,
                          double rx_gain_db, double lambda_m,
                          double sigma_dbsm, double distance_m,
                          double extra_loss_db) {
  const double p_dbm =
      received_power_dbm(tx_power_dbm, tx_gain_db, rx_gain_db, lambda_m,
                         sigma_dbsm, distance_m, extra_loss_db);
  return std::sqrt(dbm_to_watt(p_dbm));
}

double max_detection_range(double tx_power_dbm, double tx_gain_db,
                           double rx_gain_db, double lambda_m,
                           double sigma_dbsm, double noise_floor_dbm,
                           double margin_db) {
  ROS_EXPECT(lambda_m > 0.0, "wavelength must be positive");
  // Solve P_r(d) = floor + margin for d: the numerator of Eq. (1) at
  // d = 1 m, divided by the required power, is d^4.
  const double p_at_1m_dbm = received_power_dbm(
      tx_power_dbm, tx_gain_db, rx_gain_db, lambda_m, sigma_dbsm, 1.0);
  const double headroom_db = p_at_1m_dbm - (noise_floor_dbm + margin_db);
  return std::pow(10.0, headroom_db / 40.0);
}

}  // namespace ros::em
