#include "ros/em/polarization.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::em {

using ros::common::db_to_linear;

Polarization orthogonal(Polarization p) {
  return p == Polarization::horizontal ? Polarization::vertical
                                       : Polarization::horizontal;
}

Jones Jones::unit(Polarization p) {
  return p == Polarization::horizontal ? Jones{{1.0, 0.0}, {0.0, 0.0}}
                                       : Jones{{0.0, 0.0}, {1.0, 0.0}};
}

double Jones::power() const { return std::norm(h) + std::norm(v); }

cplx Jones::project(Polarization p) const {
  return p == Polarization::horizontal ? h : v;
}

Jones ScatterMatrix::apply(const Jones& in) const {
  return {hh * in.h + hv * in.v, vh * in.h + vv * in.v};
}

cplx ScatterMatrix::response(Polarization tx, Polarization rx) const {
  return apply(Jones::unit(tx)).project(rx);
}

ScatterMatrix ScatterMatrix::scaled(cplx factor) const {
  return {hh * factor, hv * factor, vh * factor, vv * factor};
}

ScatterMatrix ScatterMatrix::operator+(const ScatterMatrix& other) const {
  return {hh + other.hh, hv + other.hv, vh + other.vh, vv + other.vv};
}

ScatterMatrix ScatterMatrix::co_polarized(double amplitude,
                                          double cross_rejection_db,
                                          double cross_phase) {
  ROS_EXPECT(amplitude >= 0.0, "amplitude must be non-negative");
  ROS_EXPECT(cross_rejection_db >= 0.0, "rejection must be non-negative dB");
  const double leak =
      amplitude * std::sqrt(db_to_linear(-cross_rejection_db));
  const cplx leak_amp = leak * std::polar(1.0, cross_phase);
  return {cplx{amplitude, 0.0}, leak_amp, leak_amp, cplx{amplitude, 0.0}};
}

ScatterMatrix ScatterMatrix::polarization_switching(double amplitude) {
  ROS_EXPECT(amplitude >= 0.0, "amplitude must be non-negative");
  return {cplx{0.0, 0.0}, cplx{amplitude, 0.0}, cplx{amplitude, 0.0},
          cplx{0.0, 0.0}};
}

ScatterMatrix ScatterMatrix::handedness_preserving(double amplitude) {
  ROS_EXPECT(amplitude >= 0.0, "amplitude must be non-negative");
  return {cplx{amplitude, 0.0}, cplx{0.0, 0.0}, cplx{0.0, 0.0},
          cplx{-amplitude, 0.0}};
}

Handedness opposite(Handedness h) {
  return h == Handedness::left ? Handedness::right : Handedness::left;
}

cplx circular_response(const ScatterMatrix& s, Handedness tx,
                       Handedness rx) {
  const cplx j{0.0, 1.0};
  const double inv_sqrt2 = 0.7071067811865476;
  // e_L = (1, +j)/sqrt(2), e_R = (1, -j)/sqrt(2) on the (H, V) basis.
  const cplx tx_v = (tx == Handedness::left ? j : -j);
  const cplx rx_v = (rx == Handedness::left ? j : -j);
  // out = S * e_tx
  const cplx out_h = (s.hh + s.hv * tx_v) * inv_sqrt2;
  const cplx out_v = (s.vh + s.vv * tx_v) * inv_sqrt2;
  // e_rx^T * out (backscatter-aligned: transpose, no conjugation).
  return (out_h + rx_v * out_v) * inv_sqrt2;
}

}  // namespace ros::em
