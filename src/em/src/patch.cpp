#include "ros/em/patch.hpp"

#include <cmath>

#include "ros/common/band.hpp"
#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::em {

using namespace ros::common;

PatchDesign design_rectangular_patch(double f0_hz,
                                     const Laminate& substrate) {
  ROS_EXPECT(f0_hz > 0.0, "resonant frequency must be positive");
  ROS_EXPECT(substrate.epsilon_r >= 1.0, "permittivity must be >= 1");
  PatchDesign d;
  const double er = substrate.epsilon_r;
  const double h = substrate.thickness_m;
  // Radiating edge width for efficient radiation (Balanis eq. 14-6).
  d.width_m = kSpeedOfLight / (2.0 * f0_hz) * std::sqrt(2.0 / (er + 1.0));
  // Effective permittivity under the patch (14-1).
  d.eps_effective = (er + 1.0) / 2.0 +
                    (er - 1.0) / 2.0 /
                        std::sqrt(1.0 + 12.0 * h / d.width_m);
  // Fringing-field length extension (14-2).
  const double ratio = d.width_m / h;
  d.fringing_m = 0.412 * h * (d.eps_effective + 0.3) * (ratio + 0.264) /
                 ((d.eps_effective - 0.258) * (ratio + 0.8));
  // Resonant length (14-7).
  d.length_m = kSpeedOfLight / (2.0 * f0_hz * std::sqrt(d.eps_effective)) -
               2.0 * d.fringing_m;
  return d;
}

PatchAntenna::PatchAntenna(Params p) : params_(p) {
  ROS_EXPECT(p.resonant_hz > 0.0, "resonant frequency must be positive");
  ROS_EXPECT(p.pattern_exponent >= 0.0, "pattern exponent must be >= 0");
  ROS_EXPECT(p.quality_factor > 0.0, "quality factor must be positive");
}

PatchAntenna PatchAntenna::rotated() const {
  Params p = params_;
  p.polarization = orthogonal(p.polarization);
  return PatchAntenna(p);
}

double PatchAntenna::field_pattern(double theta_rad) const {
  const double c = std::cos(theta_rad);
  if (c <= 0.0) return 0.0;  // ground plane blocks the back hemisphere
  return std::pow(c, params_.pattern_exponent);
}

cplx PatchAntenna::s11(double hz) const {
  ROS_EXPECT(hz > 0.0, "frequency must be positive");
  // Series-resonance detuning parameter nu = f/f0 - f0/f; critically
  // coupled match: s11 = j*Q*nu / (2 + j*Q*nu).
  const double nu = hz / params_.resonant_hz - params_.resonant_hz / hz;
  const cplx jqnu{0.0, params_.quality_factor * nu};
  return jqnu / (2.0 + jqnu);
}

double PatchAntenna::match_efficiency(double hz) const {
  return 1.0 - std::norm(s11(hz));
}

cplx PatchAntenna::element_response(double theta_rad, double hz) const {
  return field_pattern(theta_rad) * std::sqrt(match_efficiency(hz));
}

ApertureCoupling::ApertureCoupling(double stub_length_m,
                                   const StriplineStackup* stackup)
    : stub_length_m_(stub_length_m), stackup_(stackup) {
  ROS_EXPECT(stub_length_m >= 0.0, "stub length must be non-negative");
  ROS_EXPECT(stackup != nullptr, "stackup must not be null");
}

double ApertureCoupling::efficiency(double hz) const {
  // The optimal stub is a quarter guided wavelength plus a fixed physical
  // offset accounting for the aperture susceptance; the offset is
  // derived from the paper's 837.5 um optimum at 79 GHz.
  static const double kOffset =
      kOptimalStub79GHz -
      StriplineStackup::ros_default().guided_wavelength(kDesignFrequency) /
          4.0;
  const double optimal = stackup_->guided_wavelength(hz) / 4.0 + kOffset;
  const double err = stackup_->phase_constant(hz) *
                     (stub_length_m_ - optimal);
  const double c = std::cos(err);
  return std::max(1e-6, c * c);
}

}  // namespace ros::em
