#include "ros/em/transmission_line.hpp"

#include <cmath>

#include "ros/common/expect.hpp"

namespace ros::em {

TransmissionLine::TransmissionLine(double length_m,
                                   const StriplineStackup* stackup)
    : length_m_(length_m), stackup_(stackup) {
  ROS_EXPECT(length_m >= 0.0, "line length must be non-negative");
  ROS_EXPECT(stackup != nullptr, "stackup must not be null");
}

double TransmissionLine::phase(double hz) const {
  return stackup_->phase_constant(hz) * length_m_;
}

double TransmissionLine::loss_db(double hz) const {
  return stackup_->attenuation_db_per_m(hz) * length_m_;
}

cplx TransmissionLine::transfer(double hz) const {
  const double amplitude = std::pow(10.0, -loss_db(hz) / 20.0);
  return std::polar(amplitude, -phase(hz));
}

TransmissionLine TransmissionLine::extended(double delta_m) const {
  return TransmissionLine(length_m_ + delta_m, stackup_);
}

}  // namespace ros::em
