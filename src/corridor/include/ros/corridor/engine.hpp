// Sharded corridor scheduler (ros::corridor).
//
// CorridorEngine advances simulated time in fixed ticks. Each tick:
//
//   1. activate — session plans whose start time has arrived take a
//      ReadSession from the free list (or construct one, cold path) and
//      bind it; plans are pre-sorted by (start, vehicle, tag), so
//      activation order never depends on input enumeration order.
//   2. shard A (parallel) — every due (session, frame) pair is one work
//      item; `parallel_for` over the flat work list runs the heavy
//      synthesize stage into per-session packet slots. Frame i of any
//      session depends only on (config, scene, pose_i, i) through its
//      counter-derived RNG stream, so items can run on any thread in
//      any order.
//   3. shard B (parallel) — `parallel_for` over active sessions; each
//      consumes its own packets in frame order (sessions are mutually
//      independent, so per-session sequentiality is the only ordering
//      the bit-determinism contract needs). A session that consumed its
//      last frame finalizes in place, writing its pre-assigned record
//      slot.
//   4. sweep (serial) — finished sessions return to the free list;
//      throughput rates, latency histograms, and occupancy gauges tick.
//
// Determinism: every readout is bit-identical to the same session run
// standalone through decode_drive, at any ROS_THREADS setting and any
// vehicle enumeration order. Only host-side measurements (latency_ms,
// wall_ms, obs instruments) vary between runs; result_digest() covers
// exactly the deterministic part.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ros/corridor/session.hpp"
#include "ros/corridor/world.hpp"
#include "ros/pipeline/interrogator.hpp"
#include "ros/scene/scene.hpp"

namespace ros::corridor {

struct CorridorStats {
  std::size_t ticks = 0;
  std::size_t frames_processed = 0;
  std::size_t reads_completed = 0;  ///< sessions finalized
  std::size_t reads_decoded = 0;    ///< non-empty payload
  std::size_t reads_no_read = 0;
  std::size_t sessions_spawned = 0;
  std::size_t sessions_recycled = 0;  ///< binds served by the free list
  std::size_t sessions_created = 0;   ///< heap constructions (cold)
  std::size_t peak_active_sessions = 0;
  std::size_t peak_active_vehicles = 0;
  double sim_time_s = 0.0;
  double wall_ms = 0.0;  ///< host-dependent; excluded from digests
};

/// One (vehicle, tag) readout. Slots are pre-assigned in plan order, so
/// the record sequence is identical across thread counts and vehicle
/// permutations.
struct ReadRecord {
  std::uint64_t vehicle_id = 0;
  std::size_t tag_index = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
  std::uint64_t noise_seed = 0;
  bool completed = false;
  double latency_ms = 0.0;  ///< wall clock, activation -> finalize
  ros::pipeline::DecodeDriveResult result;
};

struct CorridorResult {
  std::vector<ReadRecord> reads;  ///< one per plan, plan order
  CorridorStats stats;
};

class CorridorEngine {
 public:
  explicit CorridorEngine(CorridorSpec spec);
  CorridorEngine(const CorridorEngine&) = delete;
  CorridorEngine& operator=(const CorridorEngine&) = delete;

  /// Advance one time slice. Returns false once every plan has been
  /// activated, consumed, and finalized.
  bool tick();

  /// Ticks to completion and books run-level telemetry (frame-loop
  /// alloc gauge, runtime introspection, wall time).
  void run();

  bool done() const {
    return next_plan_ >= plans_.size() && active_.empty();
  }

  const CorridorSpec& spec() const { return spec_; }
  const std::vector<Vehicle>& fleet() const { return fleet_; }
  const std::vector<SessionPlan>& plans() const { return plans_; }
  const CorridorResult& result() const { return result_; }
  const CorridorStats& stats() const { return result_.stats; }
  double sim_time_s() const;
  std::size_t active_sessions() const { return active_.size(); }
  std::size_t free_sessions() const { return free_.size(); }

 private:
  struct Active {
    ReadSession* session = nullptr;
    std::size_t plan_index = 0;
    std::size_t tick_frames = 0;  ///< frames due this tick
    bool finished = false;
  };
  struct WorkItem {
    std::size_t active_index = 0;
    std::size_t k = 0;  ///< offset within the session's due frames
  };

  void activate(std::size_t plan_index, double now_ms);
  std::size_t frames_due(const Active& a, double sim_t) const;
  void finalize(Active& a, double now_ms);

  CorridorSpec spec_;
  std::vector<Vehicle> fleet_;
  std::vector<SessionPlan> plans_;
  std::vector<ros::scene::Scene> tag_scenes_;  ///< one per installation
  double rate_hz_ = 0.0;

  CorridorResult result_;
  std::size_t next_plan_ = 0;
  std::uint64_t tick_index_ = 0;

  std::vector<std::unique_ptr<ReadSession>> sessions_;  ///< all created
  std::vector<ReadSession*> free_;
  std::vector<Active> active_;
  std::vector<WorkItem> work_;           ///< reused per tick
  std::vector<std::uint64_t> vehicle_scratch_;  ///< distinct-id count
};

/// Convenience one-shot driver.
CorridorResult run_corridor(const CorridorSpec& spec);

/// Bitwise read equality on the deterministic fields: payload bits,
/// slot amplitudes, mean RSS, and sample count (raw samples too when
/// both sides retained them). Host-side latency is excluded.
bool same_read(const ros::pipeline::DecodeDriveResult& a,
               const ros::pipeline::DecodeDriveResult& b);

/// FNV-1a digest over every record's deterministic fields, in record
/// order — equal digests mean bit-identical corridor output.
std::uint64_t result_digest(const CorridorResult& result);

}  // namespace ros::corridor
