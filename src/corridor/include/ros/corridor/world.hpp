// Corridor world model (ros::corridor).
//
// A corridor is a straight road segment instrumented with N RoS tag
// installations, traversed by a fleet of vehicles. Each vehicle enters
// at x = 0 with a per-vehicle speed / lane offset / radar height drawn
// from its OWN counter-based RNG stream (keyed by the stable vehicle
// id, never by list position), so the generated traffic — and
// everything downstream of it — is independent of enumeration order
// and thread count.
//
// Interrogation model: tags are side-mounted and read independently —
// each (vehicle, tag) pair whose pass crosses the tag's capture span
// becomes one decode-mode streaming session, expressed in TAG-LOCAL
// coordinates (tag at the origin facing +y, exactly the geometry
// `decode_drive` is specified in). That choice is what makes the
// corridor's fidelity law exact: every corridor readout must equal the
// same session run standalone through `decode_drive`, bit for bit.
// Cross-vehicle interference is deliberately out of scope here
// (ROADMAP #4 layers it on top of this runtime).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ros/pipeline/interrogator.hpp"
#include "ros/pipeline/streaming.hpp"
#include "ros/scene/scene.hpp"
#include "ros/scene/trajectory.hpp"

namespace ros::corridor {

/// One roadside tag installation.
struct TagSpec {
  /// Along-segment position of the installation [m] (vehicles enter at
  /// x = 0 and drive toward +x).
  double position_m = 0.0;
  /// OOK payload carried by the tag's spatial code.
  std::vector<bool> bits = {true, false, true, true};
  int psvaas_per_stack = 32;
  bool beam_shaped = true;
  /// A session covers x in [position_m - half_span, position_m +
  /// half_span] of the vehicle's pass — the capture aperture.
  double capture_half_span_m = 2.5;
};

/// Fleet statistics; every vehicle's parameters are drawn from its own
/// id-keyed RNG stream inside these bounds.
struct TrafficSpec {
  std::size_t n_vehicles = 100;
  /// Deterministic spawn cadence: vehicle v enters at
  /// v * headway_s + U(0, headway_jitter_s) from its own stream.
  double headway_s = 0.05;
  double headway_jitter_s = 0.0;
  double min_speed_mps = 1.5;
  double max_speed_mps = 2.5;
  double min_lane_m = 2.7;
  double max_lane_m = 3.3;
  /// Radar mounting-height jitter, +/- uniform [m].
  double height_jitter_m = 0.0;
};

struct Vehicle {
  std::uint64_t id = 0;
  double spawn_s = 0.0;
  double speed_mps = 2.0;
  double lane_m = 3.0;
  double height_m = 0.0;
};

struct CorridorSpec {
  /// Vehicles despawn once past the last tag's capture span; the
  /// segment length only bounds tag placement.
  double segment_length_m = 10.0;
  std::vector<TagSpec> tags;
  TrafficSpec traffic;
  /// Explicit fleet override: when non-empty, used verbatim instead of
  /// generating from `traffic` (the spawn-permutation tests feed
  /// shuffled copies through this).
  std::vector<Vehicle> vehicles;
  /// Master seed; vehicle-parameter and session-noise streams are both
  /// derived from it through disjoint `derive_stream_seed` branches.
  std::uint64_t seed = 1;
  ros::scene::Weather weather = ros::scene::Weather::clear;
  /// Base interrogator config; each session gets a copy with its own
  /// derived noise_seed.
  ros::pipeline::InterrogatorConfig config;
  /// Streaming options for every session. retain_samples defaults off:
  /// a soak run must not hold O(total frames) of sample history.
  ros::pipeline::StreamingOptions stream{.retain_samples = false};
  /// Scheduler time slice [s of simulated time].
  double tick_s = 0.05;
};

/// One planned (vehicle, tag) read, fully determined by the spec: the
/// session's tag-local drive, start time, and derived noise seed. Plans
/// are sorted by (start_s, vehicle_id, tag_index), so their order — and
/// the order of the result records — is invariant under any permutation
/// of the input vehicle list.
struct SessionPlan {
  std::uint64_t vehicle_id = 0;
  std::size_t tag_index = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
  std::uint64_t noise_seed = 0;
  ros::scene::StraightDrive::Params drive;
};

/// The fleet for `spec`: `spec.vehicles` verbatim when non-empty, else
/// `spec.traffic.n_vehicles` generated from per-id RNG streams.
std::vector<Vehicle> fleet_of(const CorridorSpec& spec);

/// Every (vehicle, tag) session the corridor will run, sorted by
/// (start_s, vehicle_id, tag_index).
std::vector<SessionPlan> plan_sessions(const CorridorSpec& spec);

/// The session's noise seed: seed -> branch 2 -> vehicle id -> tag
/// index, all through derive_stream_seed (branch 1 feeds vehicle
/// parameter generation, so the two never collide).
std::uint64_t session_noise_seed(std::uint64_t corridor_seed,
                                 std::uint64_t vehicle_id,
                                 std::size_t tag_index);

/// Tag-local scene for installation `tag` (tag at the origin facing
/// +y). Built once per installation and shared by every session that
/// reads it — the codebook decoder cache then amortizes template builds
/// across the whole fleet.
ros::scene::Scene tag_scene_of(const TagSpec& tag,
                               ros::scene::Weather weather);

/// The session's interrogator config: `spec.config` with the derived
/// per-session noise seed.
ros::pipeline::InterrogatorConfig session_config(
    const CorridorSpec& spec, const SessionPlan& plan);

/// Reference implementation of one session: the same read run
/// standalone through the batch `decode_drive`. The corridor engine's
/// output must equal this bit for bit — the fidelity law the tests,
/// bench, and roztest oracle all check.
ros::pipeline::DecodeDriveResult standalone_read(
    const CorridorSpec& spec, const SessionPlan& plan);

}  // namespace ros::corridor
