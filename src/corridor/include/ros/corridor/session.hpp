// Recyclable (vehicle, tag) read session (ros::corridor).
//
// A ReadSession owns everything one in-flight read needs with a stable
// address: the tag-local StraightDrive the streaming engine points at,
// the per-session config copy, the decode-mode StreamingInterrogator,
// and a reusable FramePacket buffer for the current tick's synthesis
// shard. Sessions live on the heap behind unique_ptr (the engine's
// free list), so rebinding one for the next vehicle never moves it.
//
// Recycling contract: the first bind() constructs the engine; every
// later bind() goes through StreamingInterrogator::rebind(), which
// clears-but-never-shrinks, so steady-state vehicle churn performs no
// heap allocation (pinned by tests/corridor/test_corridor_recycle).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ros/corridor/world.hpp"
#include "ros/pipeline/streaming.hpp"
#include "ros/scene/trajectory.hpp"

namespace ros::corridor {

class ReadSession {
 public:
  ReadSession() = default;
  ReadSession(const ReadSession&) = delete;
  ReadSession& operator=(const ReadSession&) = delete;

  /// Arm this session for `plan`. `tag_scene` must outlive the session
  /// (the corridor engine owns one scene per installation).
  void bind(const CorridorSpec& spec, const SessionPlan& plan,
            const ros::scene::Scene& tag_scene, double begin_ms);

  ros::pipeline::StreamingInterrogator& engine() { return *engine_; }
  const SessionPlan& plan() const { return plan_; }
  double begin_ms() const { return begin_ms_; }

  /// Next frame index to synthesize/consume — the scheduler's cursor.
  std::size_t next_frame = 0;

  /// Grow-only packet buffer for one tick's worth of frames.
  void ensure_packets(std::size_t n) {
    if (packets_.size() < n) packets_.resize(n);
  }
  ros::pipeline::FramePacket& packet(std::size_t k) { return packets_[k]; }

 private:
  std::optional<ros::pipeline::StreamingInterrogator> engine_;
  ros::scene::StraightDrive drive_{ros::scene::StraightDrive::Params{}};
  ros::pipeline::InterrogatorConfig config_;
  SessionPlan plan_;
  double begin_ms_ = 0.0;
  std::vector<ros::pipeline::FramePacket> packets_;
};

}  // namespace ros::corridor
