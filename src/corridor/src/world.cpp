#include "ros/corridor/world.hpp"

#include <algorithm>
#include <tuple>

#include "ros/common/expect.hpp"
#include "ros/common/random.hpp"
#include "ros/em/material.hpp"
#include "ros/tag/tag.hpp"

namespace ros::corridor {

using ros::common::derive_stream_seed;

namespace {

// Disjoint derive_stream_seed branches off the corridor master seed:
// one feeds per-vehicle parameter streams, the other per-session noise
// streams. Both are then keyed by the stable vehicle id, so the draws
// are invariant under fleet enumeration order.
constexpr std::uint64_t kVehicleBranch = 1;
constexpr std::uint64_t kSessionBranch = 2;

}  // namespace

std::vector<Vehicle> fleet_of(const CorridorSpec& spec) {
  if (!spec.vehicles.empty()) return spec.vehicles;
  const TrafficSpec& t = spec.traffic;
  ROS_EXPECT(t.max_speed_mps >= t.min_speed_mps &&
                 t.min_speed_mps > 0.0,
             "corridor: vehicle speed range must be positive");
  ROS_EXPECT(t.max_lane_m >= t.min_lane_m,
             "corridor: lane range inverted");
  const std::uint64_t branch = derive_stream_seed(spec.seed, kVehicleBranch);
  std::vector<Vehicle> fleet;
  fleet.reserve(t.n_vehicles);
  for (std::size_t v = 0; v < t.n_vehicles; ++v) {
    ros::common::Rng rng(derive_stream_seed(branch, v));
    Vehicle veh;
    veh.id = v;
    // Draw order (speed, lane, height, spawn jitter) is part of the
    // determinism contract — reordering it changes every corridor.
    veh.speed_mps = rng.uniform(t.min_speed_mps, t.max_speed_mps);
    veh.lane_m = rng.uniform(t.min_lane_m, t.max_lane_m);
    veh.height_m = t.height_jitter_m > 0.0
                       ? rng.uniform(-t.height_jitter_m, t.height_jitter_m)
                       : 0.0;
    veh.spawn_s = static_cast<double>(v) * t.headway_s +
                  (t.headway_jitter_s > 0.0
                       ? rng.uniform(0.0, t.headway_jitter_s)
                       : 0.0);
    fleet.push_back(veh);
  }
  return fleet;
}

std::uint64_t session_noise_seed(std::uint64_t corridor_seed,
                                 std::uint64_t vehicle_id,
                                 std::size_t tag_index) {
  return derive_stream_seed(
      derive_stream_seed(derive_stream_seed(corridor_seed, kSessionBranch),
                         vehicle_id),
      tag_index);
}

std::vector<SessionPlan> plan_sessions(const CorridorSpec& spec) {
  ROS_EXPECT(!spec.tags.empty(), "corridor: no tag installations");
  ROS_EXPECT(spec.tick_s > 0.0, "corridor: tick_s must be positive");
  const std::vector<Vehicle> fleet = fleet_of(spec);
  std::vector<SessionPlan> plans;
  plans.reserve(fleet.size() * spec.tags.size());
  for (const Vehicle& veh : fleet) {
    ROS_EXPECT(veh.speed_mps > 0.0,
               "corridor: vehicle speed must be positive");
    for (std::size_t t = 0; t < spec.tags.size(); ++t) {
      const TagSpec& tag = spec.tags[t];
      ROS_EXPECT(tag.capture_half_span_m > 0.0,
                 "corridor: capture span must be positive");
      ROS_EXPECT(tag.position_m >= tag.capture_half_span_m,
                 "corridor: tag capture span starts before the segment");
      SessionPlan plan;
      plan.vehicle_id = veh.id;
      plan.tag_index = t;
      // The vehicle reaches x = position - half_span at this instant;
      // the session's tag-local drive then covers [-h, +h].
      plan.start_s = veh.spawn_s +
                     (tag.position_m - tag.capture_half_span_m) /
                         veh.speed_mps;
      plan.duration_s = 2.0 * tag.capture_half_span_m / veh.speed_mps;
      plan.noise_seed = session_noise_seed(spec.seed, veh.id, t);
      plan.drive = {.lane_offset_m = veh.lane_m,
                    .speed_mps = veh.speed_mps,
                    .start_x_m = -tag.capture_half_span_m,
                    .end_x_m = tag.capture_half_span_m,
                    .radar_height_m = veh.height_m};
      plans.push_back(plan);
    }
  }
  // (start, vehicle id, tag index) is a total order over sessions that
  // never consults list position — the scheduler, the free-list, and
  // the result records all inherit permutation invariance from it.
  std::sort(plans.begin(), plans.end(),
            [](const SessionPlan& a, const SessionPlan& b) {
              return std::tie(a.start_s, a.vehicle_id, a.tag_index) <
                     std::tie(b.start_s, b.vehicle_id, b.tag_index);
            });
  return plans;
}

ros::scene::Scene tag_scene_of(const TagSpec& tag,
                               ros::scene::Weather weather) {
  static const ros::em::StriplineStackup stackup =
      ros::em::StriplineStackup::ros_default();
  ros::scene::Scene world(weather);
  world.add_tag(ros::tag::make_default_tag(tag.bits, &stackup,
                                           tag.psvaas_per_stack,
                                           tag.beam_shaped),
                {{0.0, 0.0}, {0.0, 1.0}, 0.0});
  return world;
}

ros::pipeline::InterrogatorConfig session_config(const CorridorSpec& spec,
                                                 const SessionPlan& plan) {
  ros::pipeline::InterrogatorConfig config = spec.config;
  config.noise_seed = plan.noise_seed;
  return config;
}

ros::pipeline::DecodeDriveResult standalone_read(const CorridorSpec& spec,
                                                 const SessionPlan& plan) {
  const ros::scene::Scene world =
      tag_scene_of(spec.tags[plan.tag_index], spec.weather);
  const ros::scene::StraightDrive drive(plan.drive);
  return ros::pipeline::decode_drive(world, drive, {0.0, 0.0},
                                     session_config(spec, plan));
}

}  // namespace ros::corridor
