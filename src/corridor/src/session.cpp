#include "ros/corridor/session.hpp"

namespace ros::corridor {

void ReadSession::bind(const CorridorSpec& spec, const SessionPlan& plan,
                       const ros::scene::Scene& tag_scene,
                       double begin_ms) {
  plan_ = plan;
  begin_ms_ = begin_ms;
  next_frame = 0;
  // Copy-assign reuses capacity; the engine below copies again into its
  // own config, also by assignment on the rebind path.
  config_ = spec.config;
  config_.noise_seed = plan.noise_seed;
  drive_ = ros::scene::StraightDrive(plan.drive);
  if (engine_.has_value()) {
    engine_->rebind(config_, tag_scene, drive_, {0.0, 0.0}, spec.stream);
  } else {
    engine_.emplace(config_, tag_scene, drive_, ros::scene::Vec2{0.0, 0.0},
                    spec.stream);
  }
}

}  // namespace ros::corridor
