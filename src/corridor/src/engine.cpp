#include "ros/corridor/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ros/common/expect.hpp"
#include "ros/exec/thread_pool.hpp"
#include "ros/obs/alloc.hpp"
#include "ros/obs/log.hpp"
#include "ros/obs/metrics.hpp"
#include "ros/obs/window.hpp"
#include "ros/pipeline/stages.hpp"

namespace ros::corridor {

namespace {

constexpr const char* kLog = "corridor";

double now_ms() { return ros::obs::monotonic_s() * 1000.0; }

/// Latency buckets for corridor reads: sub-ms to tens of seconds.
const std::vector<double>& read_latency_edges() {
  static const std::vector<double> edges = {
      1.0,   2.5,   5.0,    10.0,   25.0,   50.0,    100.0,
      250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0};
  return edges;
}

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
}

template <typename T>
void fnv_pod(std::uint64_t& h, const T& v) {
  fnv_bytes(h, &v, sizeof(v));
}

}  // namespace

bool same_read(const ros::pipeline::DecodeDriveResult& a,
               const ros::pipeline::DecodeDriveResult& b) {
  if (a.decode.bits != b.decode.bits ||
      a.decode.slot_amplitudes != b.decode.slot_amplitudes ||
      a.mean_rss_dbm != b.mean_rss_dbm ||
      a.telemetry.n_points != b.telemetry.n_points) {
    return false;
  }
  if (!a.samples.empty() && !b.samples.empty() &&
      a.samples.size() != b.samples.size()) {
    return false;
  }
  return true;
}

std::uint64_t result_digest(const CorridorResult& result) {
  std::uint64_t h = 14695981039346656037ULL;
  fnv_pod(h, result.reads.size());
  for (const ReadRecord& r : result.reads) {
    fnv_pod(h, r.vehicle_id);
    fnv_pod(h, r.tag_index);
    fnv_pod(h, r.noise_seed);
    fnv_pod(h, r.completed);
    fnv_pod(h, r.result.mean_rss_dbm);
    fnv_pod(h, r.result.telemetry.n_points);
    fnv_pod(h, r.result.decode.bits.size());
    for (const bool bit : r.result.decode.bits) fnv_pod(h, bit);
    fnv_pod(h, r.result.decode.slot_amplitudes.size());
    for (const double a : r.result.decode.slot_amplitudes) fnv_pod(h, a);
  }
  return h;
}

CorridorEngine::CorridorEngine(CorridorSpec spec)
    : spec_(std::move(spec)) {
  ros::pipeline::validate(spec_.config);
  ros::pipeline::obs_session_begin();
  fleet_ = fleet_of(spec_);
  plans_ = plan_sessions(spec_);
  tag_scenes_.reserve(spec_.tags.size());
  for (const TagSpec& tag : spec_.tags) {
    tag_scenes_.push_back(tag_scene_of(tag, spec_.weather));
  }
  rate_hz_ = spec_.config.chirp.frame_rate_hz /
             static_cast<double>(spec_.config.frame_stride);
  // Pre-assign every record slot in plan order: a session finalizing on
  // a pool thread writes only its own slot, and the record sequence is
  // scheduling-independent by construction.
  result_.reads.resize(plans_.size());
  for (std::size_t p = 0; p < plans_.size(); ++p) {
    ReadRecord& r = result_.reads[p];
    r.vehicle_id = plans_[p].vehicle_id;
    r.tag_index = plans_[p].tag_index;
    r.start_s = plans_[p].start_s;
    r.duration_s = plans_[p].duration_s;
    r.noise_seed = plans_[p].noise_seed;
  }
  ROS_LOG_INFO(kLog, "corridor planned",
               ros::obs::kv("vehicles", fleet_.size()),
               ros::obs::kv("tags", spec_.tags.size()),
               ros::obs::kv("sessions", plans_.size()),
               ros::obs::kv("tick_s", spec_.tick_s));
}

double CorridorEngine::sim_time_s() const {
  return static_cast<double>(tick_index_) * spec_.tick_s;
}

void CorridorEngine::activate(std::size_t plan_index, double t_ms) {
  ReadSession* s = nullptr;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
    ++result_.stats.sessions_recycled;
  } else {
    sessions_.push_back(std::make_unique<ReadSession>());
    s = sessions_.back().get();
    ++result_.stats.sessions_created;
  }
  const SessionPlan& plan = plans_[plan_index];
  s->bind(spec_, plan, tag_scenes_[plan.tag_index], t_ms);
  active_.push_back({s, plan_index, 0, false});
  ++result_.stats.sessions_spawned;
}

std::size_t CorridorEngine::frames_due(const Active& a,
                                       double sim_t) const {
  const SessionPlan& plan = plans_[a.plan_index];
  const double elapsed = sim_t - plan.start_s;
  if (elapsed < 0.0) return 0;
  const auto due =
      static_cast<std::size_t>(std::floor(elapsed * rate_hz_)) + 1;
  return std::min(due, a.session->engine().n_frames());
}

void CorridorEngine::finalize(Active& a, double t_ms) {
  ReadRecord& record = result_.reads[a.plan_index];
  record.result = a.session->engine().finalize_decode();
  record.completed = true;
  record.latency_ms = t_ms - a.session->begin_ms();
  a.finished = true;
}

bool CorridorEngine::tick() {
  if (done()) return false;
  auto& reg = ros::obs::MetricsRegistry::global();
  ++tick_index_;
  // Fast-forward across empty stretches (sparse traffic): simulated
  // time is discrete in ticks, so jumping the index is exact.
  if (active_.empty() && next_plan_ < plans_.size()) {
    const auto skip_to = static_cast<std::uint64_t>(
        std::floor(plans_[next_plan_].start_s / spec_.tick_s));
    tick_index_ = std::max(tick_index_, skip_to);
  }
  const double sim_t = sim_time_s();
  const double t_ms = now_ms();

  // 1. Activate arrivals (plan order == deterministic order).
  while (next_plan_ < plans_.size() &&
         plans_[next_plan_].start_s <= sim_t) {
    activate(next_plan_, t_ms);
    ++next_plan_;
  }

  // 2. Flat work list: one item per due (session, frame).
  work_.clear();
  for (std::size_t i = 0; i < active_.size(); ++i) {
    Active& a = active_[i];
    const std::size_t due = frames_due(a, sim_t);
    const std::size_t next = a.session->next_frame;
    a.tick_frames = due > next ? due - next : 0;
    a.session->ensure_packets(a.tick_frames);
    for (std::size_t k = 0; k < a.tick_frames; ++k) {
      work_.push_back({i, k});
    }
  }

  // 3. Shard A: heavy synthesis, any thread, any order.
  ros::exec::parallel_for(0, work_.size(), [&](std::size_t w) {
    const WorkItem& item = work_[w];
    ReadSession& s = *active_[item.active_index].session;
    s.engine().synthesize_into(s.next_frame + item.k, s.packet(item.k));
  });

  // 4. Shard B: per-session in-order consume; finalize completed
  // sessions into their pre-assigned record slots.
  ros::exec::parallel_for(0, active_.size(), [&](std::size_t i) {
    Active& a = active_[i];
    ReadSession& s = *a.session;
    for (std::size_t k = 0; k < a.tick_frames; ++k) {
      s.engine().consume(std::move(s.packet(k)));
    }
    s.next_frame += a.tick_frames;
    if (s.next_frame >= s.engine().n_frames()) {
      finalize(a, now_ms());
    }
  });

  // 5. Serial sweep: recycle, count, report.
  std::size_t completed_now = 0;
  for (std::size_t i = 0; i < active_.size();) {
    if (active_[i].finished) {
      const ReadRecord& record = result_.reads[active_[i].plan_index];
      ++completed_now;
      ++result_.stats.reads_completed;
      if (record.result.decode.bits.empty()) {
        ++result_.stats.reads_no_read;
      } else {
        ++result_.stats.reads_decoded;
      }
      reg.histogram("corridor.read.ms", read_latency_edges())
          .observe(record.latency_ms);
      reg.windowed_histogram("corridor.read.ms.recent",
                             read_latency_edges(), 60.0)
          .observe(record.latency_ms);
      free_.push_back(active_[i].session);
      active_[i] = active_.back();
      active_.pop_back();
    } else {
      ++i;
    }
  }

  ++result_.stats.ticks;
  result_.stats.frames_processed += work_.size();
  result_.stats.sim_time_s = sim_t;
  result_.stats.peak_active_sessions =
      std::max(result_.stats.peak_active_sessions,
               active_.size() + completed_now);
  vehicle_scratch_.clear();
  for (const Active& a : active_) {
    vehicle_scratch_.push_back(plans_[a.plan_index].vehicle_id);
  }
  std::sort(vehicle_scratch_.begin(), vehicle_scratch_.end());
  const auto distinct = static_cast<std::size_t>(
      std::unique(vehicle_scratch_.begin(), vehicle_scratch_.end()) -
      vehicle_scratch_.begin());
  result_.stats.peak_active_vehicles =
      std::max(result_.stats.peak_active_vehicles, distinct);

  reg.counter("corridor.ticks").inc();
  reg.counter("corridor.frames.processed").inc(work_.size());
  if (completed_now > 0) {
    reg.counter("corridor.reads.completed").inc(completed_now);
    reg.rate("corridor.reads.rate")
        .tick(static_cast<double>(completed_now));
  }
  if (!work_.empty()) {
    reg.rate("corridor.frames.rate")
        .tick(static_cast<double>(work_.size()));
  }
  reg.gauge("corridor.sessions.active")
      .set(static_cast<double>(active_.size()));
  reg.gauge("corridor.sessions.free")
      .set(static_cast<double>(free_.size()));
  reg.gauge("corridor.sessions.peak")
      .set(static_cast<double>(result_.stats.peak_active_sessions));
  reg.gauge("corridor.vehicles.active").set(static_cast<double>(distinct));
  reg.gauge("corridor.sim_time_s").set(sim_t);
  return !done();
}

void CorridorEngine::run() {
  const double t0 = now_ms();
  const auto allocs_before = ros::obs::alloc_counters();
  while (tick()) {
  }
  result_.stats.wall_ms = now_ms() - t0;
  ros::pipeline::record_frame_loop_allocs(
      "corridor.frame_loop.allocs_per_frame", allocs_before,
      result_.stats.frames_processed);
  ros::pipeline::record_runtime_introspection(
      result_.stats.frames_processed);
  ROS_LOG_INFO(kLog, "corridor drained",
               ros::obs::kv("reads", result_.stats.reads_completed),
               ros::obs::kv("frames", result_.stats.frames_processed),
               ros::obs::kv("peak_sessions",
                            result_.stats.peak_active_sessions),
               ros::obs::kv("wall_ms", result_.stats.wall_ms));
}

CorridorResult run_corridor(const CorridorSpec& spec) {
  CorridorEngine engine(spec);
  engine.run();
  return engine.result();
}

}  // namespace ros::corridor
