// Flight recorder: always-on, bounded-memory trace of recent activity.
//
// Unlike the Chrome TraceExporter (opt-in, unbounded, written to a file
// for offline viewing), the flight recorder answers the post-mortem
// question "what was each thread doing in the last N events before the
// crash/stall". It is designed to stay enabled in production:
//
//   * Each thread owns a fixed-capacity ring of 24-byte FlightEvent
//     records (default 4096 events per thread; ROS_OBS_FLIGHT_CAPACITY
//     overrides). Writes are single-writer plain stores plus one
//     release store of the head index: no locks, no allocation after
//     the ring is created on the thread's first event.
//   * Span capture is sampled: 1 in `sample_period()` spans is recorded
//     (default 8; ROS_OBS_FLIGHT_SAMPLE overrides, 1 = every span).
//     Discrete events recorded explicitly (frame ids, RNG stream seeds,
//     queue depths, stalls) are never sampled away by this knob — the
//     caller decides, usually reusing the same sampling gate per frame.
//   * Names are interned into a bounded table (kMaxNames); the table
//     overflowing maps further names onto id 0 ("!overflow") rather
//     than growing.
//   * dump_json_fd() serializes the rings with snprintf into a stack
//     buffer and write(2) only — usable (best-effort) from a signal
//     handler; to_json() is the comfortable in-process variant.
//
// ROS_OBS_FLIGHT=off|0 disables recording entirely (record() becomes a
// single relaxed load + branch).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ros::obs {

enum class FlightKind : std::uint8_t {
  mark = 0,         ///< free-form point event
  span = 1,         ///< value = duration us, t_us = span start
  frame_begin = 2,  ///< value = frame id
  frame_end = 3,    ///< value = frame id
  rng_seed = 4,     ///< value = derived RNG stream seed
  queue_depth = 5,  ///< value = queue length at t_us
  arena_hwm = 6,    ///< value = arena high-water bytes
  stall = 7,        ///< value = armed item (frame id); watchdog-flagged
  stream_emit = 8,  ///< value = frame index an early readout fired at
};

const char* to_string(FlightKind kind);

struct FlightEvent {
  std::int64_t t_us = 0;     ///< TraceExporter epoch microseconds
  std::uint64_t value = 0;   ///< kind-specific payload
  std::uint32_t name_id = 0; ///< interned name (0 = "!overflow")
  std::uint16_t tid = 0;     ///< TraceExporter::this_thread_id()
  FlightKind kind = FlightKind::mark;
  std::uint8_t reserved = 0;
};
static_assert(sizeof(FlightEvent) == 24, "keep flight events compact");

class FlightRecorder {
 public:
  static constexpr std::uint32_t kMaxNames = 1024;

  /// Process-wide recorder; first access reads ROS_OBS_FLIGHT,
  /// ROS_OBS_FLIGHT_CAPACITY, and ROS_OBS_FLIGHT_SAMPLE.
  static FlightRecorder& global();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  std::uint32_t sample_period() const {
    return sample_period_.load(std::memory_order_relaxed);
  }
  /// 1 records every span; n records 1 in n (per thread).
  void set_sample_period(std::uint32_t period);

  std::size_t ring_capacity() const { return ring_capacity_; }
  /// Fixed bytes per participating thread (ring storage only).
  std::size_t bytes_per_thread() const {
    return ring_capacity_ * sizeof(FlightEvent);
  }

  /// Intern `name`; stable id for the process lifetime. Returns 0 once
  /// kMaxNames distinct names exist. No allocation when `name` was
  /// interned before.
  std::uint32_t intern(std::string_view name);

  /// Calling thread's sampling gate: decrements a thread-local
  /// countdown and fires once every sample_period() calls. Callers
  /// bracket a frame's worth of events with one should_sample() so the
  /// frame's begin/seed/end records stay together.
  bool should_sample();

  /// Record one event on the calling thread's ring. No-op while
  /// disabled. Never allocates after the thread's first record.
  void record(FlightKind kind, std::uint32_t name_id,
              std::uint64_t value);

  /// Sampled span capture (ScopedTimer calls this on stop()).
  void record_span(std::string_view name, std::int64_t start_us,
                   std::int64_t dur_us);

  /// Merged copy of every thread's ring, ordered by t_us. Events being
  /// written concurrently may read torn — acceptable for diagnostics.
  std::vector<FlightEvent> snapshot() const;

  /// {"schema":"ros-flight-v1", "names":[...], "events":[...]}.
  std::string to_json() const;

  /// Async-signal best-effort serialization of the same document to an
  /// already-open fd. Returns 0 on success, -1 on write failure.
  int dump_json_fd(int fd) const noexcept;

  std::size_t thread_count() const;
  /// Events overwritten by ring wrap-around, across all threads.
  std::uint64_t dropped() const;
  /// Total events ever recorded, across all threads.
  std::uint64_t total_recorded() const;

  /// Test hook: forget the calling thread's sampling countdown so
  /// sampling tests start from a known phase.
  static void reset_thread_sampling();

 private:
  struct Ring {
    explicit Ring(std::size_t capacity, std::uint16_t tid_)
        : buf(capacity), tid(tid_) {}
    std::vector<FlightEvent> buf;
    std::atomic<std::uint64_t> head{0};  ///< total writes (monotonic)
    std::uint16_t tid = 0;
  };

  FlightRecorder();
  Ring& thread_ring();

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint32_t> sample_period_{8};
  std::size_t ring_capacity_ = 4096;

  mutable std::mutex names_mu_;
  std::vector<std::string> names_;  ///< index = id; [0] = "!overflow"

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;  ///< live for process life
};

}  // namespace ros::obs
