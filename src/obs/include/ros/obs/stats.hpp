// Small-sample robust statistics for the benchmark harness: median and
// MAD (median absolute deviation) are preferred over mean/stddev for
// timing data because a single scheduler hiccup would otherwise drag
// both location and spread. Also hosts the histogram-quantile
// interpolation shared by MetricsRegistry JSON snapshots and rosbench.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ros::obs {

/// Median of `v` (copies; averages the two middle elements for even n).
/// Returns 0.0 for an empty sample.
double median(std::vector<double> v);

/// Median absolute deviation around the sample median (unscaled: no
/// 1.4826 consistency factor). Returns 0.0 for samples of size < 2.
double mad(const std::vector<double>& v);

/// Five-number-ish robust summary of one sample.
struct SampleStats {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double mad = 0.0;

  static SampleStats from(const std::vector<double>& v);
};

/// Interpolated quantile (q in [0,1]) from fixed-bucket histogram data:
/// `upper_edges` are the bucket upper bounds, `bucket_counts` has one
/// extra trailing overflow bucket (same layout as obs::Histogram).
/// Observations are assumed uniformly spread inside each bucket; the
/// first bucket's lower bound is taken as min(0, upper_edges[0]) and the
/// overflow bucket collapses to its lower edge (nothing to interpolate
/// against). Returns 0.0 when the histogram is empty.
double quantile_from_buckets(std::span<const double> upper_edges,
                             std::span<const std::uint64_t> bucket_counts,
                             double q);

}  // namespace ros::obs
