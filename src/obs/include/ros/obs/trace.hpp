// Chrome trace_event exporter: records complete ("ph":"X") spans and
// writes a JSON file loadable in chrome://tracing or ui.perfetto.dev.
//
// The global exporter is disabled (and effectively free) unless a trace
// path is set, either programmatically via enable() or with the
// ROS_TRACE_FILE environment variable; with the env var set the file is
// flushed automatically at process exit. Timestamps are microseconds on
// the steady clock relative to the session epoch, and each OS thread
// gets a small dense track id so nested spans from different threads
// land on separate tracks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ros::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;   ///< span start, relative to session epoch
  std::int64_t dur_us = 0;  ///< span duration
  std::uint32_t tid = 0;    ///< per-thread track id
};

class TraceExporter {
 public:
  TraceExporter();
  ~TraceExporter();  ///< flushes if enabled with a path
  TraceExporter(const TraceExporter&) = delete;
  TraceExporter& operator=(const TraceExporter&) = delete;

  /// Process-wide exporter; first access honors ROS_TRACE_FILE.
  static TraceExporter& global();

  /// Start (or retarget) a session writing to `path` on flush.
  void enable(std::string path);
  /// Stop recording and drop buffered events.
  void disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Microseconds since the session epoch (monotonic).
  std::int64_t now_us() const;

  /// Record one complete span. No-op while disabled.
  void record_complete(std::string_view name, std::string_view category,
                       std::int64_t ts_us, std::int64_t dur_us);

  std::size_t event_count() const;
  /// Serialize the current buffer as Chrome trace JSON.
  std::string to_json() const;
  /// Write to_json() to the enabled path. Returns false when disabled,
  /// pathless, or the file cannot be written.
  bool flush() const;

  /// Dense id of the calling thread (stable for the thread's lifetime).
  static std::uint32_t this_thread_id();

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::string path_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ros::obs
