// Chrome trace_event exporter: records complete ("ph":"X") spans and
// writes a JSON file loadable in chrome://tracing or ui.perfetto.dev.
//
// The global exporter is disabled (and effectively free) unless a trace
// path is set, either programmatically via enable() or with the
// ROS_TRACE_FILE environment variable; with the env var set the file is
// flushed automatically at process exit. Timestamps are microseconds on
// the steady clock relative to the session epoch, and each OS thread
// gets a small dense track id so nested spans from different threads
// land on separate tracks.
//
// The file is written incrementally: enable() opens it and writes the
// document prefix, batches of events are appended as they accumulate
// (and on every flush()), and each batch ends with the closing
// "\n]}\n" suffix which the next batch seeks back over. The file on
// disk is therefore valid JSON after every write — a crash or abort
// mid-run loses at most the last unflushed batch, never the document
// structure. crash_finalize() pushes any pending events out from a
// terminating context (best effort: it backs off if the lock is held).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ros::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;   ///< span start, relative to session epoch
  std::int64_t dur_us = 0;  ///< span duration
  std::uint32_t tid = 0;    ///< per-thread track id
};

class TraceExporter {
 public:
  TraceExporter();
  ~TraceExporter();  ///< flushes and closes if enabled with a path
  TraceExporter(const TraceExporter&) = delete;
  TraceExporter& operator=(const TraceExporter&) = delete;

  /// Process-wide exporter; first access honors ROS_TRACE_FILE and
  /// registers an atexit finalizer for the file.
  static TraceExporter& global();

  /// Start (or retarget) a session writing to `path`. Opens the file
  /// and writes the document prefix immediately.
  void enable(std::string path);
  /// Stop recording: flush pending events, close the file, drop the
  /// buffer.
  void disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Microseconds since the session epoch (monotonic).
  std::int64_t now_us() const;

  /// Record one complete span. No-op while disabled. Spills a batch to
  /// the file once enough events accumulate.
  void record_complete(std::string_view name, std::string_view category,
                       std::int64_t ts_us, std::int64_t dur_us);

  std::size_t event_count() const;
  /// Serialize the current buffer as Chrome trace JSON.
  std::string to_json() const;
  /// Append pending events to the enabled path (the file stays valid
  /// JSON). Returns false when disabled, pathless, or the file cannot
  /// be written.
  bool flush() const;

  /// Best-effort flush from a crash/atexit context: skips (leaving the
  /// last-written valid file) if the exporter lock is contended.
  void crash_finalize() const noexcept;

  /// Dense id of the calling thread (stable for the thread's lifetime).
  static std::uint32_t this_thread_id();

 private:
  bool open_file_locked();
  bool flush_pending_locked() const;
  void close_file_locked();

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::string path_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::FILE* file_ = nullptr;
  mutable std::size_t file_flushed_ = 0;  ///< events already on disk
  mutable bool file_has_events_ = false;
};

}  // namespace ros::obs
