// Windowed time-series instruments (ros::obs v2).
//
// The cumulative instruments in metrics.hpp answer "what happened since
// process start"; a long-running decode service also needs "what is it
// doing right now". Three building blocks provide that:
//
//   * EwmaRate — an exponentially-weighted events/second estimate with a
//     configurable half-life, so `pipeline.frames.rate` converges to the
//     live frame rate within a few half-lives of a load change.
//   * SlidingHistogram — a ring of fixed-width epochs, each holding a
//     bucketized count array; merged() returns the distribution over
//     roughly the last `window_s` seconds and forgets anything older.
//     Memory is fixed: epochs * (edges + 1) counters.
//   * TimeSeriesRing — a fixed-capacity ring of (t_s, value) samples;
//     the SnapshotExporter keeps one per metric so a diagnostics bundle
//     carries the recent history of every counter and gauge, not just
//     the final value.
//
// All three take a small mutex per operation; they are meant for
// per-frame cadence (kHz at worst), not per-sample inner loops. Every
// mutating call has an `*_at(..., now_s)` variant taking an explicit
// monotonic timestamp so tests drive the clock deterministically.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace ros::obs {

/// Seconds on the steady clock since process start (same epoch for all
/// callers; monotonic, never wall-clock).
double monotonic_s();

class EwmaRate {
 public:
  /// `halflife_s` controls how fast the estimate forgets: after one
  /// half-life of silence the reported rate has decayed by 50%.
  explicit EwmaRate(double halflife_s = 10.0);

  void tick(double n = 1.0) { tick_at(n, monotonic_s()); }
  void tick_at(double n, double now_s);

  double rate_per_s() const { return rate_per_s_at(monotonic_s()); }
  /// Estimate at `now_s`, blending any not-yet-folded ticks and decaying
  /// toward zero across silent stretches. Non-mutating.
  double rate_per_s_at(double now_s) const;

  double halflife_s() const { return halflife_s_; }

 private:
  double blend_locked(double now_s) const;

  mutable std::mutex mu_;
  double halflife_s_;
  double rate_ = 0.0;     ///< events/s folded up to last_s_
  double pending_ = 0.0;  ///< ticks since last_s_ not yet folded
  double last_s_ = -1.0;  ///< < 0 until the first tick
};

/// Merged view over a SlidingHistogram's live window. Same shape as
/// HistogramSnapshot (metrics.hpp) plus the window width.
struct WindowSnapshot {
  double window_s = 0.0;
  std::vector<double> upper_edges;
  std::vector<std::uint64_t> bucket_counts;  ///< last entry = overflow
  std::uint64_t count = 0;
  double sum = 0.0;
};

class SlidingHistogram {
 public:
  /// `upper_edges` as in Histogram (empty = default latency buckets).
  /// The window is split into `epochs` sub-intervals; a wider ratio
  /// makes expiry smoother at the cost of epochs * (edges+1) counters.
  explicit SlidingHistogram(std::span<const double> upper_edges = {},
                            double window_s = 60.0,
                            std::size_t epochs = 12);

  void observe(double v) { observe_at(v, monotonic_s()); }
  void observe_at(double v, double now_s);

  WindowSnapshot merged() const { return merged_at(monotonic_s()); }
  /// Counts from every epoch still (even partially) inside
  /// [now - window_s, now]. Epochs older than that report nothing.
  WindowSnapshot merged_at(double now_s) const;

  double window_s() const { return window_s_; }
  const std::vector<double>& upper_edges() const { return edges_; }

 private:
  struct Epoch {
    std::int64_t index = -1;  ///< floor(t / epoch_s); -1 = never used
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  void advance_locked(std::int64_t epoch_index);

  mutable std::mutex mu_;
  std::vector<double> edges_;
  double window_s_;
  double epoch_s_;
  std::vector<Epoch> epochs_;
  std::int64_t newest_ = -1;  ///< most recent epoch index seen
};

class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(std::size_t capacity = 256);

  void push(double t_s, double value);
  /// Samples oldest-to-newest (at most `capacity()` of them).
  std::vector<std::pair<double, double>> samples() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Total pushes, including ones that overwrote older samples.
  std::uint64_t total_pushed() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<std::pair<double, double>> buf_;
  std::uint64_t head_ = 0;  ///< next write position (monotonic)
};

}  // namespace ros::obs
