// Minimal recursive-descent JSON reader — the consuming half of
// json.hpp's writer. Exists so bench_compare can load BENCH_*.json and
// bench/baseline.json without an external dependency; it is a strict
// RFC 8259 subset reader (no comments, no trailing commas) tuned for
// small config-sized documents, not a streaming parser.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ros::obs {

class JsonValue {
 public:
  enum class Type { null, boolean, number, string, array, object };

  Type type = Type::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered; duplicate keys keep the last occurrence on
  /// lookup via find().
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::null; }
  bool is_object() const { return type == Type::object; }
  bool is_array() const { return type == Type::array; }
  bool is_number() const { return type == Type::number; }
  bool is_string() const { return type == Type::string; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// find() chained over a path, e.g. at("benches", "fig15_distance").
  template <typename... Keys>
  const JsonValue* at(std::string_view key, Keys... rest) const {
    const JsonValue* v = find(key);
    if constexpr (sizeof...(rest) == 0) {
      return v;
    } else {
      return v == nullptr ? nullptr : v->at(rest...);
    }
  }

  double number_or(double fallback) const {
    return is_number() ? number : fallback;
  }
  bool bool_or(bool fallback) const {
    return type == Type::boolean ? boolean : fallback;
  }
  std::string_view string_or(std::string_view fallback) const {
    return is_string() ? std::string_view(string) : fallback;
  }
};

/// Parse `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected). On failure returns nullopt and, when
/// `error` is non-null, stores a message with the byte offset.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace ros::obs
