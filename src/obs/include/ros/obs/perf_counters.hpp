// Hardware performance counters via perf_event_open (Linux): cycles,
// instructions, and cache references/misses for the calling process.
//
// Counter availability is probed at construction; on any failure —
// non-Linux build, kernel.perf_event_paranoid too strict, seccomp,
// missing PMU in a VM/container — the group degrades to available() ==
// false and start()/stop() become no-ops, so callers never need to
// guard. Counts are scaled for multiplexing (time_enabled /
// time_running) the way `perf stat` does.
#pragma once

#include <cstdint>
#include <string>

namespace ros::obs {

struct PerfCounterSample {
  bool valid = false;  ///< false when counters were unavailable
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;

  /// Instructions per cycle; 0 when invalid or cycles == 0.
  double ipc() const {
    return (valid && cycles > 0)
               ? static_cast<double>(instructions) /
                     static_cast<double>(cycles)
               : 0.0;
  }
};

class PerfCounterGroup {
 public:
  /// Opens the counter group for this process (all threads inherit on
  /// Linux is not requested; counts cover the calling thread).
  PerfCounterGroup();
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  bool available() const { return fd_leader_ >= 0; }
  /// Human-readable reason when available() is false.
  const std::string& error() const { return error_; }

  /// Reset and enable the group. No-op when unavailable.
  void start();
  /// Disable and read; sample.valid is false when unavailable or the
  /// read failed.
  PerfCounterSample stop();

 private:
  int fd_leader_ = -1;  ///< cycles (group leader)
  int fd_instructions_ = -1;
  int fd_cache_refs_ = -1;
  int fd_cache_misses_ = -1;
  std::string error_;
};

}  // namespace ros::obs
