// Structured logging for the RoS pipeline (logfmt lines on stderr).
//
// Two gates keep the hot paths free of logging cost:
//   * compile time: statements below ROS_LOG_COMPILED_MIN vanish entirely
//     (define it to 2 to strip trace+debug from a release build);
//   * run time: the minimum level defaults to `warn` and is raised or
//     lowered with the ROS_LOG_LEVEL environment variable
//     (trace|debug|info|warn|error|off) or set_log_level().
//
// Usage:
//   ROS_LOG_INFO("pipeline", "clustered point cloud",
//                ros::obs::kv("points", cloud.points.size()),
//                ros::obs::kv("clusters", clusters.size()));
// emits
//   ts=2026-08-06T12:00:00.123Z level=info component=pipeline
//   msg="clustered point cloud" points=4180 clusters=2
#pragma once

#include <concepts>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace ros::obs {

enum class LogLevel : int { trace = 0, debug = 1, info = 2, warn = 3,
                            error = 4, off = 5 };

const char* to_string(LogLevel level);

/// Parse "debug", "WARN", ... ; unknown strings return `fallback`.
LogLevel parse_log_level(std::string_view text, LogLevel fallback);

/// Current runtime minimum level. First call reads ROS_LOG_LEVEL
/// (default: warn).
LogLevel log_level();
void set_log_level(LogLevel level);

inline bool log_enabled(LogLevel level) { return level >= log_level(); }

/// One structured field, pre-rendered to text by the kv() helpers.
struct Field {
  std::string key;
  std::string value;
  bool quoted = false;  ///< string values get quotes in the output line
};

Field kv(std::string_view key, std::string_view value);
Field kv(std::string_view key, const char* value);
Field kv(std::string_view key, double value);
Field kv(std::string_view key, bool value);

template <std::integral T>
Field kv(std::string_view key, T value) {
  if constexpr (std::signed_integral<T>) {
    return Field{std::string(key),
                 std::to_string(static_cast<long long>(value)), false};
  } else {
    return Field{std::string(key),
                 std::to_string(static_cast<unsigned long long>(value)),
                 false};
  }
}

/// Render one logfmt line (no trailing newline). Exposed so tests can
/// check formatting without capturing stderr.
std::string format_log_line(LogLevel level, std::string_view component,
                            std::string_view message,
                            std::initializer_list<Field> fields);

/// Format and write one line to stderr (thread-safe).
void write_log(LogLevel level, std::string_view component,
               std::string_view message,
               std::initializer_list<Field> fields);

}  // namespace ros::obs

/// Statements below this level compile to nothing. Levels: 0 trace,
/// 1 debug, 2 info, 3 warn, 4 error.
#ifndef ROS_LOG_COMPILED_MIN
#define ROS_LOG_COMPILED_MIN 0
#endif

#define ROS_LOG_AT(level, component, message, ...)                        \
  do {                                                                    \
    if constexpr (static_cast<int>(level) >= ROS_LOG_COMPILED_MIN) {      \
      if (::ros::obs::log_enabled(level)) {                               \
        ::ros::obs::write_log(level, component, message, {__VA_ARGS__});  \
      }                                                                   \
    }                                                                     \
  } while (false)

#define ROS_LOG_TRACE(component, message, ...) \
  ROS_LOG_AT(::ros::obs::LogLevel::trace, component, message, ##__VA_ARGS__)
#define ROS_LOG_DEBUG(component, message, ...) \
  ROS_LOG_AT(::ros::obs::LogLevel::debug, component, message, ##__VA_ARGS__)
#define ROS_LOG_INFO(component, message, ...) \
  ROS_LOG_AT(::ros::obs::LogLevel::info, component, message, ##__VA_ARGS__)
#define ROS_LOG_WARN(component, message, ...) \
  ROS_LOG_AT(::ros::obs::LogLevel::warn, component, message, ##__VA_ARGS__)
#define ROS_LOG_ERROR(component, message, ...) \
  ROS_LOG_AT(::ros::obs::LogLevel::error, component, message, ##__VA_ARGS__)
