// Comparison engine behind the `bench_compare` CLI and the CI gate:
// diff a fresh rosbench run (BENCH_*.json) against a committed
// baseline, flagging per-bench wall-time regressions beyond a relative
// threshold and any fidelity check that left its envelope or vanished.
// Lives in the library (not the tool) so the verdict logic is unit-
// testable on synthetic run pairs.
#pragma once

#include <string>
#include <vector>

#include "ros/obs/json_parse.hpp"

namespace ros::obs {

struct CompareOptions {
  /// A bench regresses when new_median > ratio * base_median. A
  /// baseline bench entry may override this with its own
  /// "perf_threshold_ratio" field.
  double default_perf_ratio = 1.35;
  /// Ignore regressions whose absolute slowdown is below this (guards
  /// microsecond-scale benches against timer noise tripping the ratio).
  double min_abs_delta_ms = 0.5;
  /// When true, benches present in the baseline but absent from the new
  /// run are reported but do not fail the comparison (for --filter
  /// runs).
  bool allow_missing = false;
  /// A throughput entry regresses when new < base / ratio (throughput
  /// is better-is-higher, so the ratio is applied inverted relative to
  /// wall time). Gated warn-only alongside perf regressions.
  double default_throughput_ratio = 1.35;
};

enum class BenchVerdict {
  pass,
  perf_regression,   ///< slowed beyond threshold
  fidelity_drift,    ///< a fidelity check failed or disappeared
  missing_in_new,    ///< baseline bench absent from the new run
  new_bench,         ///< no baseline entry yet (informational)
};

std::string_view to_string(BenchVerdict v);

struct BenchDelta {
  std::string name;
  BenchVerdict verdict = BenchVerdict::pass;
  double base_median_ms = 0.0;
  double new_median_ms = 0.0;
  double ratio = 0.0;      ///< new/base (0 when either side missing)
  double threshold = 0.0;  ///< effective perf ratio applied
  std::vector<std::string> notes;  ///< per-check fidelity detail lines
};

struct CompareReport {
  std::vector<BenchDelta> benches;
  int perf_regressions = 0;
  int throughput_regressions = 0;
  int fidelity_failures = 0;
  int missing = 0;
  bool parse_ok = true;
  std::string parse_error;

  bool perf_ok() const { return perf_regressions == 0; }
  bool throughput_ok() const { return throughput_regressions == 0; }
  bool fidelity_ok() const { return fidelity_failures == 0; }
  /// 0 clean; 1 perf or throughput regression only (suppressed when
  /// perf_warn_only); 2 fidelity drift or missing coverage (always
  /// hard); 3 unreadable input.
  int exit_code(bool perf_warn_only) const;
  /// Multi-line human-readable summary table.
  std::string render() const;
};

/// Compare two parsed rosbench documents (see EXPERIMENTS.md for the
/// schema). `allow_missing` handling per CompareOptions.
CompareReport compare_runs(const JsonValue& new_run,
                           const JsonValue& baseline,
                           const CompareOptions& opts = {});

/// Convenience: parse both documents then compare; parse failures set
/// parse_ok = false and exit_code() == 3.
CompareReport compare_run_files(const std::string& new_path,
                                const std::string& baseline_path,
                                const CompareOptions& opts = {});

}  // namespace ros::obs
