// Decode forensics: per-read provenance capture (ros::obs::probe).
//
// Where the flight recorder answers "what was this *process* doing",
// the probe answers the domain question "where in the funnel did this
// *read* die, and why". Call sites in the interrogation pipeline tap
// stage artifacts (range-FFT summaries, point cloud, cluster
// assignments, coding-band spectrum, per-bit decision margins) into a
// thread-local pending ReadProvenance record; when the read finishes,
// policy decides whether the record becomes a self-contained JSON
// bundle under <ROS_OBS_DIAG_DIR>/reads/ alongside the crash bundles.
//
// The layer is built to be compiled in permanently:
//
//   * Disarmed (the default), every tap is one relaxed atomic load and
//     a branch; no allocation, no capture, nothing written. The
//     bench_obs_overhead gate holds this path to <= 1% on the
//     decode_drive hot loop and the zero-alloc frame budgets.
//   * Armed via ROS_OBS_PROBE=failure|always (or set_mode()), stage
//     taps serialize bounded JSON fragments. `failure` captures every
//     read but only writes a bundle when the read failed: the pipeline
//     reported a failure reason (e.g. no_read), the decoded bits
//     mismatch the caller-provided expected bits, or the caller aborts
//     the read (fuzz invariant violation, exception). `always` writes
//     every captured read, subject to ROS_OBS_PROBE_SAMPLE (capture 1
//     in N reads; default 1).
//   * Bundles are self-contained for replay: build/host/runtime info,
//     config digest, master noise seed (per-frame streams re-derive via
//     derive_stream_seed), funnel verdicts, and — when the caller
//     attached one — the full testkit scenario text. `rostriage replay`
//     re-runs the read bit-identically from that.
//
// Capture is deliberately observation-only: arming the probe must not
// change any decoded bit (enforced by bench fidelity checks).
//
// Threading: the pending record is thread-local, so concurrent reads on
// different threads capture independently. Context (scenario text +
// expected bits) is also thread-local; set it on the thread that runs
// the read.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ros::obs::probe {

enum class Mode : int {
  off = 0,      ///< taps short-circuit (default)
  failure = 1,  ///< capture every read, write bundles only on failure
  always = 2,   ///< write every (sampled) captured read
};

const char* to_string(Mode m);
/// "off"/"0" -> off, "failure"/"fail" -> failure, "always"/"on"/"1" ->
/// always; anything else -> off.
Mode parse_mode(std::string_view s);

/// Active mode; first call reads ROS_OBS_PROBE / ROS_OBS_PROBE_SAMPLE.
Mode mode();
void set_mode(Mode m);
/// Capture 1 in `n` reads in Mode::always (failure mode captures every
/// read — a failure is exactly the read you cannot afford to sample
/// away). 0/1 = every read.
void set_sample_period(std::uint32_t n);

/// True when any capture can happen (mode != off). The single relaxed
/// load every tap call performs first.
bool armed();

/// Begin an attempted read on this thread. Returns true when the read
/// is being captured (armed + sampled in); all taps until end_read()
/// attach to it. An unfinished prior record on this thread is dropped.
bool begin_read(std::string_view kind, std::uint64_t noise_seed,
                std::uint64_t config_digest);
/// True between begin_read() and end_read()/abort on this thread when
/// the current read is being captured. Call sites guard expensive
/// artifact serialization with this, not just armed().
bool capturing();

/// Scalar / string annotations ("mean_rss_dbm", "threads", ...).
void annotate(std::string_view key, double value);
void annotate(std::string_view key, std::string_view value);

/// Attach one stage artifact as a pre-serialized JSON value. Artifacts
/// beyond `max_artifact_bytes()` are replaced by a truncation note so a
/// runaway tap cannot balloon a bundle.
void stage_artifact(std::string_view stage, std::string json);
std::size_t max_artifact_bytes();
void set_max_artifact_bytes(std::size_t bytes);

/// Funnel verdict for one stage, in pipeline order: e.g. "synthesized",
/// "detected", "clustered", "aperture", "decoded".
void funnel(std::string_view stage, bool passed, std::string_view detail);

/// Decoded payload of the pending read (compared against the context's
/// expected bits to detect silent wrong-bit reads).
void decoded_bits(const std::vector<bool>& bits);

/// Caller context, attached to every subsequent bundle on this thread
/// until cleared: the self-contained scenario text that reproduces the
/// read (testkit Scenario::encode()) and the ground-truth payload.
void set_context(std::string scenario_text,
                 std::vector<bool> expected_bits);
void clear_context();

/// Finish the pending read. `failure_reason` empty means the pipeline
/// considers the read successful; policy (see Mode) decides whether a
/// bundle is written. Returns the bundle path, or "" when none was
/// written. Safe to call with no pending read (returns "").
std::string end_read(std::string_view failure_reason);

/// Write whatever the pending read captured so far (partial bundle),
/// e.g. from an exception handler or a fuzz oracle that failed after
/// the read returned. Always writes when a captured read is pending,
/// regardless of mode policy.
std::string abort_read(std::string_view reason);

/// Path of the most recent bundle written by this thread ("" if none).
std::string last_bundle_path();
/// Bundles written process-wide (mirrors obs.probe.bundles counter).
std::uint64_t bundles_written();

/// Directory read bundles land in: <diag_dir()>/reads.
std::string reads_dir();

}  // namespace ros::obs::probe
