// Periodic metrics snapshot exporter.
//
// A background thread wakes every `interval_s` and:
//   * appends one JSON line (a full MetricsSnapshot document plus a
//     timestamp) to `jsonl_path` when set — tail -f friendly, and each
//     line parses standalone through json_parse.hpp;
//   * rewrites `prom_path` atomically (tmp file + rename) with the
//     Prometheus text exposition of the same snapshot, for a node
//     exporter textfile collector to pick up;
//   * folds every counter/gauge/rate value into an in-memory
//     TimeSeriesRing (fixed capacity, default 240 points ≈ 4 minutes at
//     1 Hz) so crash diagnostics can include recent history even when
//     no file export was configured.
//
// tick_at(now_s) runs one cycle synchronously — tests drive it with a
// fake clock and never need the thread. global() reads
// ROS_OBS_EXPORT_FILE, ROS_OBS_PROM_FILE, and ROS_OBS_EXPORT_INTERVAL_MS
// on first use and auto-starts the thread when either path is set;
// processes that never set those run zero extra threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "ros/obs/window.hpp"

namespace ros::obs {

class SnapshotExporter {
 public:
  struct Options {
    std::string jsonl_path;  ///< empty = no JSONL export
    std::string prom_path;   ///< empty = no Prometheus export
    double interval_s = 1.0;
    std::size_t ring_capacity = 240;
  };

  explicit SnapshotExporter(Options options);
  ~SnapshotExporter();
  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;

  /// Process-wide exporter; first access reads ROS_OBS_EXPORT_FILE,
  /// ROS_OBS_PROM_FILE, ROS_OBS_EXPORT_INTERVAL_MS and starts the
  /// background thread when either file is configured.
  static SnapshotExporter& global();

  /// Idempotent: construct the global exporter (and hence its thread,
  /// when configured). Call sites: bench ObsSession, pipeline entry.
  static void ensure_started_from_env();

  const Options& options() const { return options_; }

  /// Start the background thread (idempotent).
  void start();
  /// Stop and join the background thread (idempotent, safe if never
  /// started).
  void stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// One export cycle at monotonic time `now_s`: snapshot the global
  /// registry, append JSONL / rewrite Prometheus file, fold scalars
  /// into the time-series rings. Returns false if any configured file
  /// write failed.
  bool tick_at(double now_s);
  bool tick() { return tick_at(monotonic_s()); }

  std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  /// {"schema":"ros-series-v1","series":{name:[[t,v],...]}} over every
  /// scalar metric seen so far. Safe to call from any thread.
  std::string series_json() const;

  /// Test hook: drop accumulated series state.
  void clear_series();

 private:
  void thread_main();

  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> ticks_{0};
  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  mutable std::mutex series_mu_;
  std::map<std::string, std::unique_ptr<TimeSeriesRing>, std::less<>>
      series_;
};

}  // namespace ros::obs
