// Fidelity scorecard: headline physics numbers from the figure
// reproductions (SNR at reference distances, retroreflection FoV,
// end-to-end BER, ...) checked against the envelopes the paper
// establishes. Benches record named values with [lo, hi] bounds; the
// rosbench driver serializes the card into BENCH_*.json where
// bench_compare gates on any check leaving its envelope.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ros::obs {

class JsonWriter;

struct FidelityCheck {
  std::string name;
  double value = 0.0;
  double lo = 0.0;  ///< inclusive lower envelope bound
  double hi = 0.0;  ///< inclusive upper envelope bound
  std::string note;

  bool pass() const { return value >= lo && value <= hi; }
};

class Scorecard {
 public:
  /// Record (or overwrite, by name) one check. Insertion order is kept
  /// so reports read in the order the bench computed them.
  void record(std::string_view name, double value, double lo, double hi,
              std::string_view note = {});

  const std::vector<FidelityCheck>& checks() const { return checks_; }
  const FidelityCheck* find(std::string_view name) const;
  bool all_pass() const;
  std::size_t failures() const;

  /// Emits {"<name>": {"value":v,"lo":l,"hi":h,"pass":b,"note":s}, ...}
  /// as one JSON object value (the caller writes the surrounding key).
  void write_json(JsonWriter& w) const;

 private:
  std::vector<FidelityCheck> checks_;
};

}  // namespace ros::obs
