// Minimal JSON emission helper used by the observability sinks (metrics
// snapshots, Chrome trace export, telemetry sidecars). Not a general
// JSON library: it only writes, the caller is responsible for calling
// begin/end in a balanced order, and non-finite doubles serialize as
// null so the output stays standard-compliant.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ros::obs {

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be followed by a value or begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);  ///< non-finite -> null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  JsonWriter& null();
  /// Splice an already-serialized JSON value verbatim (e.g. a metrics
  /// snapshot from MetricsRegistry::to_json()). The caller guarantees
  /// `json` is one well-formed value.
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma_for_value();
  std::string out_;
  /// One entry per open container: true until the first element is
  /// written (suppresses the leading comma).
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace ros::obs
