// RAII stage timing: a ScopedTimer measures the enclosing scope on the
// steady clock and, on destruction (or an early stop()), reports the
// span to the global TraceExporter and optionally to a latency
// Histogram. Nested timers nest naturally in the trace view because
// each span carries its own (start, duration) on the thread's track.
//
//   {
//     ros::obs::ScopedTimer t("interrogate.cluster", "pipeline",
//                             &registry.histogram("interrogate.cluster.ms"));
//     ...
//   }  // span recorded here
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ros/obs/metrics.hpp"

namespace ros::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name,
                       std::string category = "pipeline",
                       Histogram* histogram_ms = nullptr);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// End the span early; idempotent. Returns the elapsed milliseconds.
  double stop();
  /// Elapsed so far (or the final duration once stopped).
  double elapsed_ms() const;

 private:
  std::string name_;
  std::string category_;
  Histogram* histogram_ms_;
  std::int64_t start_us_;
  double elapsed_ms_ = 0.0;
  bool stopped_ = false;
};

/// Convenience: time into the global registry's histogram `<name>.ms`.
ScopedTimer make_registry_timer(std::string name,
                                std::string category = "pipeline");

}  // namespace ros::obs
