// Crash and stall diagnostics.
//
// write_diagnostics_bundle(reason) drops a self-contained directory of
// post-mortem evidence under ROS_OBS_DIAG_DIR (default "ros-diag"):
//
//   <dir>/<reason>-<pid>-<seq>/
//     flight.json      flight-recorder tail (ros-flight-v1)
//     metrics.json     full MetricsSnapshot at bundle time
//     series.json      recent per-metric time series (ros-series-v1)
//     provenance.json  build + host info, reason, pid, signal
//
// install_crash_handlers() hooks SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL:
// the first crashing thread finalizes the trace file, writes a bundle,
// then restores the default disposition and re-raises so the process
// still dies with the original signal (wait-status-accurate for CI and
// death tests). Bundle writing from a handler is deliberately
// best-effort: flight.json goes through the async-signal-tolerant
// dump_json_fd() path, the other files through normal serialization
// that may allocate — acceptable for diagnostics, never load-bearing.
// ROS_OBS_CRASH_HANDLERS=1 in the environment auto-installs the
// handlers the first time any obs entry point runs.
//
// The Watchdog flags frames that blow through their deadline: worker
// threads arm a per-thread slot (Watchdog::Guard, RAII) around each
// frame; a poller thread (or poll_now() in tests) scans the slots and,
// on expiry, bumps `obs.watchdog.stalls`, records a FlightKind::stall
// event, and logs the offending stage + frame. Arming and disarming are
// a couple of relaxed atomic stores — cheap enough for per-frame use.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace ros::obs {

/// Directory bundles are written into: ROS_OBS_DIAG_DIR or "ros-diag".
std::string diag_dir();

/// Write a diagnostics bundle; returns the bundle directory path, or
/// empty on failure (diag dir not creatable). `reason` becomes part of
/// the directory name — keep it short and filesystem-safe.
std::string write_diagnostics_bundle(std::string_view reason);

/// Install the fatal-signal handlers (idempotent). Also pre-touches the
/// global recorder/registry/exporter singletons so a later handler
/// never constructs them from a crashed context.
void install_crash_handlers();
bool crash_handlers_installed();

/// Install iff ROS_OBS_CRASH_HANDLERS is "1"/"on". Called from obs
/// session entry points; cheap after the first call.
void maybe_install_crash_handlers_from_env();

class Watchdog {
 public:
  static Watchdog& global();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Arm the calling thread's slot: the current work item (`name`,
  /// `frame`) must disarm within `deadline_ms` or the poller flags it.
  void arm(std::string_view name, double deadline_ms,
           std::uint64_t frame);
  void disarm();

  /// RAII arm/disarm around one frame. A non-positive deadline is a
  /// no-op guard, so call sites can pass a disabled config through.
  class Guard {
   public:
    Guard(std::string_view name, double deadline_ms, std::uint64_t frame)
        : armed_(deadline_ms > 0.0) {
      if (armed_) Watchdog::global().arm(name, deadline_ms, frame);
    }
    ~Guard() {
      if (armed_) Watchdog::global().disarm();
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    bool armed_;
  };

  /// Start the poller thread (idempotent).
  void start(double poll_ms = 100.0);
  /// Stop and join the poller (idempotent).
  void stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// One synchronous scan pass at monotonic time `now_s`; returns how
  /// many slots were newly flagged. Tests drive this directly.
  std::size_t poll_now_at(double now_s);
  std::size_t poll_now();

  /// Stalls flagged since process start (mirrors obs.watchdog.stalls).
  std::uint64_t stall_count() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    /// Absolute deadline, monotonic_s-based microseconds; 0 = disarmed.
    std::atomic<std::int64_t> deadline_us{0};
    std::atomic<std::uint64_t> frame{0};
    std::atomic<std::uint32_t> name_id{0};
    std::atomic<bool> flagged{false};
    std::uint16_t tid = 0;
  };

  Watchdog() = default;
  Slot& thread_slot();
  void thread_main(double poll_ms);

  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  mutable std::mutex slots_mu_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace ros::obs
