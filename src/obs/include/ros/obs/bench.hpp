// Micro-benchmark engine behind the `rosbench` driver and per-bench
// `--time` mode: warmup + repetitions around an arbitrary body, robust
// wall/CPU statistics (min/median/MAD, see stats.hpp), peak RSS, and
// optional perf_event hardware counters with graceful fallback.
//
//   ros::obs::BenchRunOptions opts;
//   opts.reps = 5;
//   const auto t = ros::obs::run_timed([&] { workload(); }, opts);
//   // t.wall_ms.median, t.perf.cycles (0 if unavailable), ...
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "ros/obs/perf_counters.hpp"
#include "ros/obs/stats.hpp"

namespace ros::obs {

struct BenchRunOptions {
  int warmup = 1;  ///< untimed runs before measurement
  int reps = 3;    ///< timed repetitions (clamped to >= 1)
  bool collect_perf_counters = true;
};

/// Result of timing one body for opts.reps repetitions.
struct BenchTiming {
  int reps = 0;
  SampleStats wall_ms;  ///< steady-clock wall time per rep
  SampleStats cpu_ms;   ///< process CPU time per rep
  /// Peak resident set size of the process after the run (ru_maxrss,
  /// kB). High-water mark, so it only ever grows across benches in the
  /// same process.
  long peak_rss_kb = 0;
  /// Per-rep median of each hardware counter; valid == false when
  /// perf_event_open is unavailable (non-Linux, paranoid kernel,
  /// containers without PMU access).
  PerfCounterSample perf;
  std::string perf_error;  ///< reason when perf.valid is false
};

BenchTiming run_timed(const std::function<void()>& body,
                      const BenchRunOptions& opts = {});

/// Compile-time provenance baked in by the build system.
struct BuildInfo {
  std::string git_sha;     ///< "unknown" outside a git checkout
  std::string compiler;    ///< e.g. "GNU 13.2.0"
  std::string flags;       ///< CMAKE_CXX_FLAGS + build-type flags
  std::string build_type;  ///< e.g. "Release"
};
BuildInfo build_info();

struct HostInfo {
  std::string os;        ///< kernel name + release
  std::string arch;      ///< e.g. "x86_64"
  std::string hostname;
  int n_cpus = 0;
};
HostInfo host_info();

/// "YYYYMMDDTHHMMSSZ" (UTC), filesystem-safe for BENCH_<timestamp>.json.
std::string utc_timestamp_compact();
/// "YYYY-MM-DDTHH:MM:SSZ" (UTC) for inside JSON documents.
std::string utc_timestamp_iso8601();

/// CLI helper: match `--flag=VALUE` or `--flag VALUE`; advances `i`
/// past the consumed value in the two-token form. Returns true when
/// `arg` was this flag and `*out` was set.
bool arg_take_value(std::string_view arg, std::string_view flag, int argc,
                    char** argv, int& i, std::string* out);

}  // namespace ros::obs
