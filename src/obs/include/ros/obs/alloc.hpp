// Heap-allocation accounting for zero-allocation claims.
//
// When ROS_OBS_COUNT_ALLOCS is on (the default), ros_obs replaces the
// global operator new/delete family with thin wrappers over malloc/free
// that bump relaxed atomic counters (process-wide) and plain
// thread_local counters (per thread). Cost is two increments per
// allocation; sanitizers still interpose the underlying malloc, so
// ASan/TSan/LSan coverage is unchanged.
//
// This exists so "the frame loop allocates nothing after warmup" is a
// tested metric: bracket the region with thread_alloc_counters() and
// assert the delta, as the zero-allocation pipeline tests and the
// interrogator frame-loop gauges
// (`interrogate.frame_loop.allocs_per_frame`,
// `decode_drive.frame_loop.allocs_per_frame`) do.
//
// Counters are monotonic totals since process start; consumers compare
// deltas. Freed bytes are not tracked (untracked for sized/unsized
// delete alike) -- this is an allocation-rate probe, not a live-heap
// profiler.
#pragma once

#include <cstdint>

namespace ros::obs {

struct AllocCounters {
  std::uint64_t allocs = 0;  ///< operator new calls
  std::uint64_t frees = 0;   ///< operator delete calls
  std::uint64_t bytes = 0;   ///< total bytes requested via new
};

/// Process-wide totals (all threads, relaxed reads).
AllocCounters alloc_counters();

/// Calling thread's totals.
AllocCounters thread_alloc_counters();

/// False when the build disabled the operator new override
/// (ROS_OBS_COUNT_ALLOCS=OFF); counters then stay zero and
/// zero-allocation tests must skip.
bool alloc_counting_enabled();

}  // namespace ros::obs
