// Thread-safe process-wide metrics: named counters, gauges, and
// fixed-bucket latency histograms.
//
// Instruments are created on first use and live until the registry is
// cleared (tests only) or the process exits, so callers may cache the
// returned references across hot loops; all mutation paths are
// lock-free atomics. snapshot()/to_json() give a consistent-enough view
// for sidecar files and end-of-run reports (bucket counts are read
// relaxed, so a snapshot taken mid-update may be off by in-flight
// increments — fine for monitoring, not for accounting).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ros/obs/window.hpp"

namespace ros::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= upper_edges[i]
/// (first matching bucket); one extra overflow bucket counts the rest.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_edges);

  void observe(double v);

  const std::vector<double>& upper_edges() const { return edges_; }
  /// Relaxed-read copy of all bucket counts (size = edges + 1 overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Log-spaced edges from 1 us to 30 s, suited to stage timings in ms.
  static std::span<const double> default_latency_buckets_ms();

 private:
  std::vector<double> edges_;  ///< strictly increasing
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_edges;
  std::vector<std::uint64_t> bucket_counts;  ///< last entry = overflow
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Interpolated summary quantile (q in [0,1]) from the bucket edges
  /// (see stats.hpp: uniform-within-bucket assumption; the overflow
  /// bucket collapses to the last edge). Snapshots serialize p50/p90/
  /// p99 so sidecar consumers need not re-derive them from raw buckets.
  double quantile(double q) const;
};

/// Windowed histogram state at snapshot time: a HistogramSnapshot over
/// only the live window, plus the window width.
struct WindowedHistogramSnapshot {
  std::string name;
  double window_s = 0.0;
  std::vector<double> upper_edges;
  std::vector<std::uint64_t> bucket_counts;  ///< last entry = overflow
  std::uint64_t count = 0;
  double sum = 0.0;

  double quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
  /// EWMA rates, decayed to snapshot time (events/s).
  std::vector<std::pair<std::string, double>> rates;
  std::vector<WindowedHistogramSnapshot> windowed;

  std::string to_json() const;
  /// Prometheus text exposition format (one ros_* family per instrument
  /// kind, metric names carried in a `name` label, escaped per spec).
  std::string to_prometheus() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry (what the pipeline and benches report into).
  static MetricsRegistry& global();

  /// Find-or-create; references stay valid until clear().
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_edges` is used only on first creation; empty means
  /// default_latency_buckets_ms().
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_edges = {});
  /// EWMA events/s rate; `halflife_s` is used only on first creation.
  EwmaRate& rate(std::string_view name, double halflife_s = 10.0);
  /// Sliding-window histogram; window/epoch/edge parameters are used
  /// only on first creation.
  SlidingHistogram& windowed_histogram(
      std::string_view name, std::span<const double> upper_edges = {},
      double window_s = 60.0, std::size_t epochs = 12);

  MetricsSnapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }

  /// Drop every instrument. Invalidates previously returned references;
  /// only call between runs (tests, bench warmup).
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
  std::map<std::string, std::unique_ptr<EwmaRate>, std::less<>> rates_;
  std::map<std::string, std::unique_ptr<SlidingHistogram>, std::less<>>
      windowed_;
};

}  // namespace ros::obs
