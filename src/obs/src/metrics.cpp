#include "ros/obs/metrics.hpp"

#include <algorithm>

#include "ros/common/expect.hpp"
#include "ros/obs/json.hpp"
#include "ros/obs/stats.hpp"

namespace ros::obs {

Histogram::Histogram(std::span<const double> upper_edges)
    : edges_(upper_edges.begin(), upper_edges.end()) {
  if (edges_.empty()) {
    const auto def = default_latency_buckets_ms();
    edges_.assign(def.begin(), def.end());
  }
  ROS_EXPECT(std::is_sorted(edges_.begin(), edges_.end()) &&
                 std::adjacent_find(edges_.begin(), edges_.end()) ==
                     edges_.end(),
             "histogram bucket edges must be strictly increasing");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(edges_.size() + 1);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const auto idx = static_cast<std::size_t>(it - edges_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(edges_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::span<const double> Histogram::default_latency_buckets_ms() {
  static const double edges[] = {0.001, 0.003, 0.01, 0.03, 0.1,  0.3,
                                 1.0,   3.0,   10.0, 30.0, 100.0, 300.0,
                                 1000.0, 3000.0, 10000.0, 30000.0};
  return edges;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_edges) {
  const std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_edges))
             .first;
  }
  return *it->second;
}

EwmaRate& MetricsRegistry::rate(std::string_view name,
                                double halflife_s) {
  const std::scoped_lock lock(mu_);
  auto it = rates_.find(name);
  if (it == rates_.end()) {
    it = rates_
             .emplace(std::string(name),
                      std::make_unique<EwmaRate>(halflife_s))
             .first;
  }
  return *it->second;
}

SlidingHistogram& MetricsRegistry::windowed_histogram(
    std::string_view name, std::span<const double> upper_edges,
    double window_s, std::size_t epochs) {
  const std::scoped_lock lock(mu_);
  auto it = windowed_.find(name);
  if (it == windowed_.end()) {
    it = windowed_
             .emplace(std::string(name),
                      std::make_unique<SlidingHistogram>(
                          upper_edges, window_s, epochs))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.upper_edges = h->upper_edges();
    hs.bucket_counts = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  snap.rates.reserve(rates_.size());
  for (const auto& [name, r] : rates_) {
    snap.rates.emplace_back(name, r->rate_per_s());
  }
  snap.windowed.reserve(windowed_.size());
  for (const auto& [name, wh] : windowed_) {
    WindowSnapshot ws = wh->merged();
    WindowedHistogramSnapshot out;
    out.name = name;
    out.window_s = ws.window_s;
    out.upper_edges = std::move(ws.upper_edges);
    out.bucket_counts = std::move(ws.bucket_counts);
    out.count = ws.count;
    out.sum = ws.sum;
    snap.windowed.push_back(std::move(out));
  }
  return snap;
}

void MetricsRegistry::clear() {
  const std::scoped_lock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  rates_.clear();
  windowed_.clear();
}

double HistogramSnapshot::quantile(double q) const {
  return quantile_from_buckets(upper_edges, bucket_counts, q);
}

double WindowedHistogramSnapshot::quantile(double q) const {
  return quantile_from_buckets(upper_edges, bucket_counts, q);
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : histograms) {
    w.key(h.name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("p50").value(h.quantile(0.50));
    w.key("p90").value(h.quantile(0.90));
    w.key("p99").value(h.quantile(0.99));
    w.key("upper_edges").begin_array();
    for (double e : h.upper_edges) w.value(e);
    w.end_array();
    w.key("bucket_counts").begin_array();
    for (std::uint64_t c : h.bucket_counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("rates").begin_object();
  for (const auto& [name, v] : rates) w.key(name).value(v);
  w.end_object();
  w.key("windowed").begin_object();
  for (const auto& h : windowed) {
    w.key(h.name).begin_object();
    w.key("window_s").value(h.window_s);
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("p50").value(h.quantile(0.50));
    w.key("p90").value(h.quantile(0.90));
    w.key("p99").value(h.quantile(0.99));
    w.key("upper_edges").begin_array();
    for (double e : h.upper_edges) w.value(e);
    w.end_array();
    w.key("bucket_counts").begin_array();
    for (std::uint64_t c : h.bucket_counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

namespace {

/// Escape a Prometheus label value: backslash, double quote, and
/// newline must be backslash-escaped per the text exposition format.
std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void prom_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

void prom_histogram(std::string& out, const char* family,
                    std::string_view name,
                    const std::vector<double>& edges,
                    const std::vector<std::uint64_t>& buckets,
                    std::uint64_t count, double sum) {
  const std::string label = prom_escape(name);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    out += family;
    out += "_bucket{name=\"" + label + "\",le=\"";
    if (b < edges.size()) {
      prom_number(out, edges[b]);
    } else {
      out += "+Inf";
    }
    out += "\"} " + std::to_string(cumulative) + "\n";
  }
  out += family;
  out += "_count{name=\"" + label + "\"} " + std::to_string(count) + "\n";
  out += family;
  out += "_sum{name=\"" + label + "\"} ";
  prom_number(out, sum);
  out += "\n";
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  // Instrument names keep their dotted form in a `name` label instead
  // of being mangled into Prometheus metric names; one ros_* family per
  // instrument kind keeps the exposition valid and greppable.
  std::string out;
  out += "# TYPE ros_counter counter\n";
  for (const auto& [name, v] : counters) {
    out += "ros_counter{name=\"" + prom_escape(name) + "\"} " +
           std::to_string(v) + "\n";
  }
  out += "# TYPE ros_gauge gauge\n";
  for (const auto& [name, v] : gauges) {
    out += "ros_gauge{name=\"" + prom_escape(name) + "\"} ";
    prom_number(out, v);
    out += "\n";
  }
  out += "# TYPE ros_rate gauge\n";
  for (const auto& [name, v] : rates) {
    out += "ros_rate{name=\"" + prom_escape(name) + "\"} ";
    prom_number(out, v);
    out += "\n";
  }
  out += "# TYPE ros_histogram histogram\n";
  for (const auto& h : histograms) {
    prom_histogram(out, "ros_histogram", h.name, h.upper_edges,
                   h.bucket_counts, h.count, h.sum);
  }
  out += "# TYPE ros_window_histogram histogram\n";
  for (const auto& h : windowed) {
    prom_histogram(out, "ros_window_histogram", h.name, h.upper_edges,
                   h.bucket_counts, h.count, h.sum);
  }
  return out;
}

}  // namespace ros::obs
