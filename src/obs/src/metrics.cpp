#include "ros/obs/metrics.hpp"

#include <algorithm>

#include "ros/common/expect.hpp"
#include "ros/obs/json.hpp"
#include "ros/obs/stats.hpp"

namespace ros::obs {

Histogram::Histogram(std::span<const double> upper_edges)
    : edges_(upper_edges.begin(), upper_edges.end()) {
  if (edges_.empty()) {
    const auto def = default_latency_buckets_ms();
    edges_.assign(def.begin(), def.end());
  }
  ROS_EXPECT(std::is_sorted(edges_.begin(), edges_.end()) &&
                 std::adjacent_find(edges_.begin(), edges_.end()) ==
                     edges_.end(),
             "histogram bucket edges must be strictly increasing");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(edges_.size() + 1);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const auto idx = static_cast<std::size_t>(it - edges_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(edges_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::span<const double> Histogram::default_latency_buckets_ms() {
  static const double edges[] = {0.001, 0.003, 0.01, 0.03, 0.1,  0.3,
                                 1.0,   3.0,   10.0, 30.0, 100.0, 300.0,
                                 1000.0, 3000.0, 10000.0, 30000.0};
  return edges;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_edges) {
  const std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_edges))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.upper_edges = h->upper_edges();
    hs.bucket_counts = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::clear() {
  const std::scoped_lock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

double HistogramSnapshot::quantile(double q) const {
  return quantile_from_buckets(upper_edges, bucket_counts, q);
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : histograms) {
    w.key(h.name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("p50").value(h.quantile(0.50));
    w.key("p90").value(h.quantile(0.90));
    w.key("p99").value(h.quantile(0.99));
    w.key("upper_edges").begin_array();
    for (double e : h.upper_edges) w.value(e);
    w.end_array();
    w.key("bucket_counts").begin_array();
    for (std::uint64_t c : h.bucket_counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace ros::obs
