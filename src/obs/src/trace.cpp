#include "ros/obs/trace.hpp"

#include <cstdio>
#include <cstdlib>

#include "ros/obs/json.hpp"
#include "ros/obs/log.hpp"

namespace ros::obs {

TraceExporter::TraceExporter()
    : epoch_(std::chrono::steady_clock::now()) {}

TraceExporter::~TraceExporter() {
  if (enabled() && !path_.empty()) flush();
}

TraceExporter& TraceExporter::global() {
  static TraceExporter exporter;
  static const bool env_checked = [] {
    if (const char* path = std::getenv("ROS_TRACE_FILE");
        path != nullptr && path[0] != '\0') {
      exporter.enable(path);
    }
    return true;
  }();
  (void)env_checked;
  return exporter;
}

void TraceExporter::enable(std::string path) {
  const std::scoped_lock lock(mu_);
  path_ = std::move(path);
  epoch_ = std::chrono::steady_clock::now();
  events_.clear();
  enabled_.store(true, std::memory_order_release);
}

void TraceExporter::disable() {
  const std::scoped_lock lock(mu_);
  enabled_.store(false, std::memory_order_release);
  path_.clear();
  events_.clear();
}

std::int64_t TraceExporter::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceExporter::record_complete(std::string_view name,
                                    std::string_view category,
                                    std::int64_t ts_us,
                                    std::int64_t dur_us) {
  if (!enabled()) return;
  TraceEvent ev{std::string(name), std::string(category), ts_us, dur_us,
                this_thread_id()};
  const std::scoped_lock lock(mu_);
  events_.push_back(std::move(ev));
}

std::size_t TraceExporter::event_count() const {
  const std::scoped_lock lock(mu_);
  return events_.size();
}

std::string TraceExporter::to_json() const {
  const std::scoped_lock lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& ev : events_) {
    w.begin_object();
    w.key("name").value(ev.name);
    w.key("cat").value(ev.category);
    w.key("ph").value("X");
    w.key("ts").value(static_cast<std::int64_t>(ev.ts_us));
    w.key("dur").value(static_cast<std::int64_t>(ev.dur_us));
    w.key("pid").value(1);
    w.key("tid").value(static_cast<std::int64_t>(ev.tid));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool TraceExporter::flush() const {
  std::string path;
  {
    const std::scoped_lock lock(mu_);
    if (!enabled_.load(std::memory_order_acquire) || path_.empty()) {
      return false;
    }
    path = path_;
  }
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    ROS_LOG_ERROR("obs", "cannot open trace file", kv("path", path));
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

std::uint32_t TraceExporter::this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace ros::obs
