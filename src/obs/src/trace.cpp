#include "ros/obs/trace.hpp"

#include <cstdlib>

#include "ros/obs/json.hpp"
#include "ros/obs/log.hpp"

namespace ros::obs {

namespace {

// Every batch write ends with this suffix; the next batch seeks back
// over it so the file is a complete JSON document between writes.
constexpr char kSuffix[] = "\n]}\n";
constexpr long kSuffixLen = 4;

// Spill to the file once this many events are pending; keeps memory
// bounded-ish on long traced runs without a syscall per span.
constexpr std::size_t kSpillBatch = 256;

void write_event_json(JsonWriter& w, const TraceEvent& ev) {
  w.begin_object();
  w.key("name").value(ev.name);
  w.key("cat").value(ev.category);
  w.key("ph").value("X");
  w.key("ts").value(static_cast<std::int64_t>(ev.ts_us));
  w.key("dur").value(static_cast<std::int64_t>(ev.dur_us));
  w.key("pid").value(1);
  w.key("tid").value(static_cast<std::int64_t>(ev.tid));
  w.end_object();
}

}  // namespace

TraceExporter::TraceExporter()
    : epoch_(std::chrono::steady_clock::now()) {}

TraceExporter::~TraceExporter() {
  const std::scoped_lock lock(mu_);
  if (enabled_.load(std::memory_order_acquire)) flush_pending_locked();
  close_file_locked();
}

TraceExporter& TraceExporter::global() {
  static TraceExporter exporter;
  static const bool env_checked = [] {
    if (const char* path = std::getenv("ROS_TRACE_FILE");
        path != nullptr && path[0] != '\0') {
      exporter.enable(path);
    }
    // Abnormal-but-orderly exits (std::exit from error paths) still get
    // their pending events; the destructor covers normal teardown.
    std::atexit([] { TraceExporter::global().crash_finalize(); });
    return true;
  }();
  (void)env_checked;
  return exporter;
}

bool TraceExporter::open_file_locked() {
  close_file_locked();
  if (path_.empty()) return false;
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    ROS_LOG_ERROR("obs", "cannot open trace file", kv("path", path_));
    return false;
  }
  const char prefix[] = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::fwrite(prefix, 1, sizeof(prefix) - 1, file_);
  std::fwrite(kSuffix, 1, kSuffixLen, file_);
  std::fflush(file_);
  file_flushed_ = 0;
  file_has_events_ = false;
  return true;
}

void TraceExporter::close_file_locked() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_flushed_ = 0;
  file_has_events_ = false;
}

bool TraceExporter::flush_pending_locked() const {
  if (file_ == nullptr) return false;
  if (file_flushed_ >= events_.size()) {
    return std::fflush(file_) == 0;
  }
  if (std::fseek(file_, -kSuffixLen, SEEK_END) != 0) return false;
  JsonWriter w;
  for (std::size_t i = file_flushed_; i < events_.size(); ++i) {
    // First event ever gets just a newline; the rest need the comma.
    w.raw(file_has_events_ || i != file_flushed_ ? ",\n" : "\n");
    write_event_json(w, events_[i]);
  }
  const std::string batch = w.take();
  bool ok = std::fwrite(batch.data(), 1, batch.size(), file_) ==
            batch.size();
  ok = std::fwrite(kSuffix, 1, kSuffixLen, file_) ==
           static_cast<std::size_t>(kSuffixLen) &&
       ok;
  ok = std::fflush(file_) == 0 && ok;
  file_flushed_ = events_.size();
  file_has_events_ = true;
  return ok;
}

void TraceExporter::enable(std::string path) {
  const std::scoped_lock lock(mu_);
  path_ = std::move(path);
  epoch_ = std::chrono::steady_clock::now();
  events_.clear();
  open_file_locked();
  enabled_.store(true, std::memory_order_release);
}

void TraceExporter::disable() {
  const std::scoped_lock lock(mu_);
  if (enabled_.load(std::memory_order_acquire)) flush_pending_locked();
  close_file_locked();
  enabled_.store(false, std::memory_order_release);
  path_.clear();
  events_.clear();
}

std::int64_t TraceExporter::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceExporter::record_complete(std::string_view name,
                                    std::string_view category,
                                    std::int64_t ts_us,
                                    std::int64_t dur_us) {
  if (!enabled()) return;
  TraceEvent ev{std::string(name), std::string(category), ts_us, dur_us,
                this_thread_id()};
  const std::scoped_lock lock(mu_);
  events_.push_back(std::move(ev));
  if (file_ != nullptr && events_.size() - file_flushed_ >= kSpillBatch) {
    flush_pending_locked();
  }
}

std::size_t TraceExporter::event_count() const {
  const std::scoped_lock lock(mu_);
  return events_.size();
}

std::string TraceExporter::to_json() const {
  const std::scoped_lock lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& ev : events_) {
    w.begin_object();
    w.key("name").value(ev.name);
    w.key("cat").value(ev.category);
    w.key("ph").value("X");
    w.key("ts").value(static_cast<std::int64_t>(ev.ts_us));
    w.key("dur").value(static_cast<std::int64_t>(ev.dur_us));
    w.key("pid").value(1);
    w.key("tid").value(static_cast<std::int64_t>(ev.tid));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool TraceExporter::flush() const {
  const std::scoped_lock lock(mu_);
  if (!enabled_.load(std::memory_order_acquire) || path_.empty()) {
    return false;
  }
  if (file_ == nullptr) {
    // enable() failed to open the path (or the file was closed); retry
    // once so a transient failure does not wedge the session.
    auto* self = const_cast<TraceExporter*>(this);
    if (!self->open_file_locked()) return false;
  }
  return flush_pending_locked();
}

void TraceExporter::crash_finalize() const noexcept {
  // Terminating context: if another thread holds the lock mid-write,
  // back off — the last completed batch already left a valid file.
  if (!mu_.try_lock()) return;
  if (enabled_.load(std::memory_order_acquire) && file_ != nullptr) {
    flush_pending_locked();
  }
  mu_.unlock();
}

std::uint32_t TraceExporter::this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace ros::obs
