#include "ros/obs/json_parse.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace ros::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::object) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;  // last occurrence wins
  }
  return found;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!parse_value(&v)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after document");
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(std::string_view why) {
    if (error_.empty()) {
      error_ = std::string(why) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_value(JsonValue* out) {
    if (depth_ > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out->type = JsonValue::Type::string;
        return parse_string(&out->string);
      case 't':
        out->type = JsonValue::Type::boolean;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->type = JsonValue::Type::boolean;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->type = JsonValue::Type::null;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->type = JsonValue::Type::object;
    ++pos_;  // '{'
    ++depth_;
    skip_ws();
    if (consume('}')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(&key)) return false;
      if (!consume(':')) return fail("expected ':'");
      JsonValue v;
      if (!parse_value(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    out->type = JsonValue::Type::array;
    ++pos_;  // '['
    ++depth_;
    skip_ws();
    if (consume(']')) {
      --depth_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!parse_value(&v)) return false;
      out->array.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("bad escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // recombined; each half encodes independently, which is
            // lossy but keeps the reader simple — our writer never
            // emits them).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
        continue;
      }
      *out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    out->type = JsonValue::Type::number;
    out->number = v;
    return true;
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace ros::obs
