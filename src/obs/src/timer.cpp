#include "ros/obs/timer.hpp"

#include "ros/obs/flight_recorder.hpp"
#include "ros/obs/trace.hpp"

namespace ros::obs {

ScopedTimer::ScopedTimer(std::string name, std::string category,
                         Histogram* histogram_ms)
    : name_(std::move(name)),
      category_(std::move(category)),
      histogram_ms_(histogram_ms),
      start_us_(TraceExporter::global().now_us()) {}

ScopedTimer::~ScopedTimer() { stop(); }

double ScopedTimer::stop() {
  if (stopped_) return elapsed_ms_;
  stopped_ = true;
  const std::int64_t end_us = TraceExporter::global().now_us();
  const std::int64_t dur_us = end_us - start_us_;
  elapsed_ms_ = static_cast<double>(dur_us) / 1000.0;
  TraceExporter::global().record_complete(name_, category_, start_us_,
                                          dur_us);
  FlightRecorder::global().record_span(name_, start_us_, dur_us);
  if (histogram_ms_ != nullptr) histogram_ms_->observe(elapsed_ms_);
  return elapsed_ms_;
}

double ScopedTimer::elapsed_ms() const {
  if (stopped_) return elapsed_ms_;
  return static_cast<double>(TraceExporter::global().now_us() -
                             start_us_) /
         1000.0;
}

ScopedTimer make_registry_timer(std::string name, std::string category) {
  Histogram& h = MetricsRegistry::global().histogram(name + ".ms");
  return ScopedTimer(std::move(name), std::move(category), &h);
}

}  // namespace ros::obs
