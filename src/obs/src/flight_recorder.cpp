#include "ros/obs/flight_recorder.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "ros/obs/json.hpp"
#include "ros/obs/trace.hpp"

namespace ros::obs {

namespace {

/// Name -> id index over FlightRecorder::names_. Kept file-local so the
/// header stays free of <map>.
std::map<std::string, std::uint32_t, std::less<>>& intern_index() {
  static std::map<std::string, std::uint32_t, std::less<>> index;
  return index;
}

thread_local std::uint32_t t_sample_countdown = 0;
thread_local bool t_sample_primed = false;

std::size_t env_size(const char* name, std::size_t fallback,
                     std::size_t lo, std::size_t hi) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || parsed <= 0) return fallback;
  return std::clamp(static_cast<std::size_t>(parsed), lo, hi);
}

/// write(2) the whole buffer; EINTR-tolerant.
bool write_all(int fd, const char* data, std::size_t n) noexcept {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) return false;
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::mark: return "mark";
    case FlightKind::span: return "span";
    case FlightKind::frame_begin: return "frame_begin";
    case FlightKind::frame_end: return "frame_end";
    case FlightKind::rng_seed: return "rng_seed";
    case FlightKind::queue_depth: return "queue_depth";
    case FlightKind::arena_hwm: return "arena_hwm";
    case FlightKind::stall: return "stall";
    case FlightKind::stream_emit: return "stream_emit";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder() {
  names_.reserve(64);
  names_.emplace_back("!overflow");
  if (const char* v = std::getenv("ROS_OBS_FLIGHT");
      v != nullptr &&
      (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0)) {
    enabled_.store(false, std::memory_order_relaxed);
  }
  ring_capacity_ =
      env_size("ROS_OBS_FLIGHT_CAPACITY", 4096, 64, std::size_t{1} << 20);
  sample_period_.store(
      static_cast<std::uint32_t>(
          env_size("ROS_OBS_FLIGHT_SAMPLE", 8, 1, 1u << 20)),
      std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::set_sample_period(std::uint32_t period) {
  sample_period_.store(std::max<std::uint32_t>(period, 1),
                       std::memory_order_relaxed);
}

std::uint32_t FlightRecorder::intern(std::string_view name) {
  const std::scoped_lock lock(names_mu_);
  auto& index = intern_index();
  if (const auto it = index.find(name); it != index.end()) {
    return it->second;
  }
  if (names_.size() >= kMaxNames) return 0;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  index.emplace(std::string(name), id);
  return id;
}

bool FlightRecorder::should_sample() {
  if (!t_sample_primed) {
    // Phase 0 so the very first frame of a run is always captured.
    t_sample_primed = true;
    t_sample_countdown = 0;
  }
  if (t_sample_countdown == 0) {
    t_sample_countdown = sample_period_.load(std::memory_order_relaxed);
    if (t_sample_countdown > 0) --t_sample_countdown;
    return true;
  }
  --t_sample_countdown;
  return false;
}

void FlightRecorder::reset_thread_sampling() { t_sample_primed = false; }

FlightRecorder::Ring& FlightRecorder::thread_ring() {
  thread_local Ring* cached = nullptr;
  if (cached == nullptr) {
    const std::scoped_lock lock(rings_mu_);
    rings_.push_back(std::make_unique<Ring>(
        ring_capacity_, static_cast<std::uint16_t>(
                            TraceExporter::this_thread_id() & 0xffff)));
    cached = rings_.back().get();
  }
  return *cached;
}

void FlightRecorder::record(FlightKind kind, std::uint32_t name_id,
                            std::uint64_t value) {
  if (!enabled()) return;
  Ring& ring = thread_ring();
  const std::uint64_t idx = ring.head.load(std::memory_order_relaxed);
  FlightEvent& slot = ring.buf[idx % ring.buf.size()];
  slot.t_us = TraceExporter::global().now_us();
  slot.value = value;
  slot.name_id = name_id;
  slot.tid = ring.tid;
  slot.kind = kind;
  ring.head.store(idx + 1, std::memory_order_release);
}

void FlightRecorder::record_span(std::string_view name,
                                 std::int64_t start_us,
                                 std::int64_t dur_us) {
  if (!enabled() || !should_sample()) return;
  Ring& ring = thread_ring();
  const std::uint64_t idx = ring.head.load(std::memory_order_relaxed);
  FlightEvent& slot = ring.buf[idx % ring.buf.size()];
  slot.t_us = start_us;
  slot.value = static_cast<std::uint64_t>(std::max<std::int64_t>(dur_us, 0));
  slot.name_id = intern(name);
  slot.tid = ring.tid;
  slot.kind = FlightKind::span;
  ring.head.store(idx + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  {
    const std::scoped_lock lock(rings_mu_);
    for (const auto& ring : rings_) {
      const std::uint64_t head =
          ring->head.load(std::memory_order_acquire);
      const std::uint64_t n =
          std::min<std::uint64_t>(head, ring->buf.size());
      for (std::uint64_t k = head - n; k < head; ++k) {
        out.push_back(ring->buf[k % ring->buf.size()]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.t_us < b.t_us;
            });
  return out;
}

std::string FlightRecorder::to_json() const {
  const std::vector<FlightEvent> events = snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("ros-flight-v1");
  w.key("ring_capacity").value(static_cast<std::uint64_t>(ring_capacity_));
  w.key("sample_period").value(static_cast<std::uint64_t>(sample_period()));
  w.key("threads").value(static_cast<std::uint64_t>(thread_count()));
  w.key("dropped").value(dropped());
  w.key("names").begin_array();
  {
    const std::scoped_lock lock(names_mu_);
    for (const std::string& n : names_) w.value(n);
  }
  w.end_array();
  w.key("events").begin_array();
  for (const FlightEvent& ev : events) {
    w.begin_object();
    w.key("t_us").value(static_cast<std::int64_t>(ev.t_us));
    w.key("kind").value(to_string(ev.kind));
    w.key("name").value(static_cast<std::uint64_t>(ev.name_id));
    w.key("tid").value(static_cast<std::uint64_t>(ev.tid));
    w.key("value").value(ev.value);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

int FlightRecorder::dump_json_fd(int fd) const noexcept {
  // Stack buffer + snprintf + write(2) only: no allocation, no locks on
  // the ring side (racy reads are acceptable post-mortem). The names
  // table is read without its mutex — entries are append-only and the
  // vector is reserved, so in the worst case a name added mid-crash is
  // missed.
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf),
                        "{\"schema\":\"ros-flight-v1\",\"ring_capacity\""
                        ":%zu,\"sample_period\":%u,\"names\":[",
                        ring_capacity_, sample_period());
  if (n < 0 || !write_all(fd, buf, static_cast<std::size_t>(n))) return -1;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    // Interned names are code literals (stage ids); escape the two
    // characters that could break the JSON string anyway.
    n = std::snprintf(buf, sizeof(buf), "%s\"", i == 0 ? "" : ",");
    if (n < 0 || !write_all(fd, buf, static_cast<std::size_t>(n))) return -1;
    for (const char c : names_[i]) {
      if (c == '"' || c == '\\') {
        const char esc[2] = {'\\', c};
        if (!write_all(fd, esc, 2)) return -1;
      } else if (static_cast<unsigned char>(c) >= 0x20) {
        if (!write_all(fd, &c, 1)) return -1;
      }
    }
    if (!write_all(fd, "\"", 1)) return -1;
  }
  if (!write_all(fd, "],\"events\":[", 12)) return -1;
  bool first = true;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t count =
        std::min<std::uint64_t>(head, ring->buf.size());
    for (std::uint64_t k = head - count; k < head; ++k) {
      const FlightEvent ev = ring->buf[k % ring->buf.size()];
      n = std::snprintf(
          buf, sizeof(buf),
          "%s{\"t_us\":%lld,\"kind\":\"%s\",\"name\":%u,\"tid\":%u,"
          "\"value\":%llu}",
          first ? "" : ",", static_cast<long long>(ev.t_us),
          to_string(ev.kind), ev.name_id, ev.tid,
          static_cast<unsigned long long>(ev.value));
      if (n < 0 || !write_all(fd, buf, static_cast<std::size_t>(n))) {
        return -1;
      }
      first = false;
    }
  }
  return write_all(fd, "]}\n", 3) ? 0 : -1;
}

std::size_t FlightRecorder::thread_count() const {
  const std::scoped_lock lock(rings_mu_);
  return rings_.size();
}

std::uint64_t FlightRecorder::dropped() const {
  const std::scoped_lock lock(rings_mu_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > ring->buf.size()) dropped += head - ring->buf.size();
  }
  return dropped;
}

std::uint64_t FlightRecorder::total_recorded() const {
  const std::scoped_lock lock(rings_mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->head.load(std::memory_order_acquire);
  }
  return total;
}

}  // namespace ros::obs
