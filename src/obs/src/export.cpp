#include "ros/obs/export.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "ros/obs/json.hpp"
#include "ros/obs/metrics.hpp"

namespace ros::obs {

namespace {

double env_interval_s() {
  const char* v = std::getenv("ROS_OBS_EXPORT_INTERVAL_MS");
  if (v == nullptr || *v == '\0') return 1.0;
  char* end = nullptr;
  const double ms = std::strtod(v, &end);
  if (end == v || ms <= 0.0) return 1.0;
  return ms / 1000.0;
}

std::string env_path(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? std::string() : std::string(v);
}

bool append_line(const std::string& path, const std::string& line) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

bool replace_file(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

SnapshotExporter::SnapshotExporter(Options options)
    : options_(std::move(options)) {
  if (options_.interval_s <= 0.0) options_.interval_s = 1.0;
  if (options_.ring_capacity < 2) options_.ring_capacity = 2;
}

SnapshotExporter::~SnapshotExporter() { stop(); }

SnapshotExporter& SnapshotExporter::global() {
  static SnapshotExporter* exporter = [] {
    Options opt;
    opt.jsonl_path = env_path("ROS_OBS_EXPORT_FILE");
    opt.prom_path = env_path("ROS_OBS_PROM_FILE");
    opt.interval_s = env_interval_s();
    // Leaked intentionally: the export thread may outlive static
    // teardown order otherwise (it reads the metrics registry).
    // Touch the registry first so its teardown is ordered after the
    // atexit handler below (it snapshots the registry).
    (void)MetricsRegistry::global();
    auto* e = new SnapshotExporter(std::move(opt));
    if (!e->options().jsonl_path.empty() ||
        !e->options().prom_path.empty()) {
      e->start();
      // The instance is leaked, so orderly exits need an explicit stop
      // to get the final shutdown tick (runs shorter than one interval
      // would otherwise export nothing).
      std::atexit([] { SnapshotExporter::global().stop(); });
    }
    return e;
  }();
  return *exporter;
}

void SnapshotExporter::ensure_started_from_env() { (void)global(); }

void SnapshotExporter::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  stop_requested_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { thread_main(); });
}

void SnapshotExporter::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  {
    const std::scoped_lock lock(wake_mu_);
    stop_requested_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

void SnapshotExporter::thread_main() {
  const auto interval = std::chrono::duration<double>(options_.interval_s);
  std::unique_lock lock(wake_mu_);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    wake_cv_.wait_for(lock, interval, [this] {
      return stop_requested_.load(std::memory_order_relaxed);
    });
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    lock.unlock();
    tick();
    lock.lock();
  }
  // Final tick so short runs still export at least once on shutdown.
  lock.unlock();
  tick();
}

bool SnapshotExporter::tick_at(double now_s) {
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  {
    const std::scoped_lock lock(series_mu_);
    const auto fold = [&](const std::string& name, double v) {
      auto it = series_.find(name);
      if (it == series_.end()) {
        it = series_
                 .emplace(name, std::make_unique<TimeSeriesRing>(
                                    options_.ring_capacity))
                 .first;
      }
      it->second->push(now_s, v);
    };
    for (const auto& [name, v] : snap.counters) {
      fold(name, static_cast<double>(v));
    }
    for (const auto& [name, v] : snap.gauges) fold(name, v);
    for (const auto& [name, v] : snap.rates) fold(name, v);
  }
  bool ok = true;
  if (!options_.jsonl_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("t_s").value(now_s);
    w.key("metrics").raw(snap.to_json());
    w.end_object();
    ok = append_line(options_.jsonl_path, w.take()) && ok;
  }
  if (!options_.prom_path.empty()) {
    ok = replace_file(options_.prom_path, snap.to_prometheus()) && ok;
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

std::string SnapshotExporter::series_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("ros-series-v1");
  w.key("ring_capacity")
      .value(static_cast<std::uint64_t>(options_.ring_capacity));
  w.key("series").begin_object();
  {
    const std::scoped_lock lock(series_mu_);
    for (const auto& [name, ring] : series_) {
      w.key(name).begin_array();
      for (const auto& [t, v] : ring->samples()) {
        w.begin_array();
        w.value(t);
        w.value(v);
        w.end_array();
      }
      w.end_array();
    }
  }
  w.end_object();
  w.end_object();
  return w.take();
}

void SnapshotExporter::clear_series() {
  const std::scoped_lock lock(series_mu_);
  series_.clear();
}

}  // namespace ros::obs
