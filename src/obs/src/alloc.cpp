#include "ros/obs/alloc.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace ros::obs {
namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};

thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_frees = 0;
thread_local std::uint64_t t_bytes = 0;

#if defined(ROS_OBS_COUNT_ALLOCS)

inline void note_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  ++t_allocs;
  t_bytes += size;
}

inline void note_free() {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  ++t_frees;
}

inline void* checked_malloc(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  note_alloc(size);
  return p;
}

inline void* checked_aligned(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (p == nullptr) throw std::bad_alloc();
  note_alloc(size);
  return p;
}

#endif  // ROS_OBS_COUNT_ALLOCS

}  // namespace

AllocCounters alloc_counters() {
  return {g_allocs.load(std::memory_order_relaxed),
          g_frees.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

AllocCounters thread_alloc_counters() {
  return {t_allocs, t_frees, t_bytes};
}

bool alloc_counting_enabled() {
#if defined(ROS_OBS_COUNT_ALLOCS)
  return true;
#else
  return false;
#endif
}

}  // namespace ros::obs

#if defined(ROS_OBS_COUNT_ALLOCS)

// Global operator new/delete replacement (full family). Keep these
// out-of-line and exception-correct; everything funnels into malloc so
// sanitizer interposition still sees every byte.

void* operator new(std::size_t size) {
  return ros::obs::checked_malloc(size);
}

void* operator new[](std::size_t size) {
  return ros::obs::checked_malloc(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ros::obs::checked_malloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ros::obs::checked_malloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  return ros::obs::checked_aligned(size,
                                   static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ros::obs::checked_aligned(size,
                                   static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return ros::obs::checked_aligned(size,
                                     static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return ros::obs::checked_aligned(size,
                                     static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept {
  if (p != nullptr) {
    ros::obs::note_free();
    std::free(p);
  }
}

void operator delete[](void* p) noexcept {
  if (p != nullptr) {
    ros::obs::note_free();
    std::free(p);
  }
}

void operator delete(void* p, std::size_t) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, std::size_t) noexcept {
  ::operator delete[](p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete[](p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete[](p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete[](p);
}

void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  ::operator delete[](p);
}

#endif  // ROS_OBS_COUNT_ALLOCS
