#include "ros/obs/window.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/obs/metrics.hpp"

namespace ros::obs {

double monotonic_s() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

EwmaRate::EwmaRate(double halflife_s)
    : halflife_s_(std::max(halflife_s, 1e-3)) {}

void EwmaRate::tick_at(double n, double now_s) {
  const std::scoped_lock lock(mu_);
  if (last_s_ < 0.0) {
    // First tick opens the estimation window; there is no rate yet.
    last_s_ = now_s;
    pending_ += n;
    return;
  }
  const double dt = now_s - last_s_;
  pending_ += n;
  // Fold at most once per ~1/8 half-life: finer folding adds nothing to
  // the estimate and keeps the math robust against dt -> 0.
  if (dt < halflife_s_ / 8.0) return;
  const double inst = pending_ / dt;
  const double w = 1.0 - std::exp2(-dt / halflife_s_);
  rate_ += w * (inst - rate_);
  pending_ = 0.0;
  last_s_ = now_s;
}

double EwmaRate::blend_locked(double now_s) const {
  if (last_s_ < 0.0) return 0.0;
  const double dt = now_s - last_s_;
  if (dt <= 0.0) return rate_;
  const double inst = pending_ / dt;
  const double w = 1.0 - std::exp2(-dt / halflife_s_);
  return rate_ + w * (inst - rate_);
}

double EwmaRate::rate_per_s_at(double now_s) const {
  const std::scoped_lock lock(mu_);
  return blend_locked(now_s);
}

SlidingHistogram::SlidingHistogram(std::span<const double> upper_edges,
                                   double window_s, std::size_t epochs)
    : edges_(upper_edges.begin(), upper_edges.end()),
      window_s_(std::max(window_s, 1e-3)),
      epoch_s_(window_s_ / static_cast<double>(std::max<std::size_t>(
                   epochs, 2))),
      epochs_(std::max<std::size_t>(epochs, 2)) {
  if (edges_.empty()) {
    const auto def = Histogram::default_latency_buckets_ms();
    edges_.assign(def.begin(), def.end());
  }
  ROS_EXPECT(std::is_sorted(edges_.begin(), edges_.end()) &&
                 std::adjacent_find(edges_.begin(), edges_.end()) ==
                     edges_.end(),
             "sliding histogram bucket edges must be strictly increasing");
  for (Epoch& e : epochs_) e.buckets.assign(edges_.size() + 1, 0);
}

void SlidingHistogram::advance_locked(std::int64_t epoch_index) {
  if (epoch_index <= newest_) return;
  // Clear every epoch slot between the last written one and now; a gap
  // longer than the ring just clears everything once.
  const std::int64_t gap = epoch_index - newest_;
  const std::int64_t n = std::min<std::int64_t>(
      gap, static_cast<std::int64_t>(epochs_.size()));
  for (std::int64_t k = 0; k < n; ++k) {
    Epoch& e = epochs_[static_cast<std::size_t>(
        (epoch_index - k) % static_cast<std::int64_t>(epochs_.size()))];
    e.index = epoch_index - k;
    std::fill(e.buckets.begin(), e.buckets.end(), 0);
    e.count = 0;
    e.sum = 0.0;
  }
  newest_ = epoch_index;
}

void SlidingHistogram::observe_at(double v, double now_s) {
  const std::scoped_lock lock(mu_);
  const auto epoch_index =
      static_cast<std::int64_t>(std::floor(now_s / epoch_s_));
  advance_locked(epoch_index);
  Epoch& e = epochs_[static_cast<std::size_t>(
      epoch_index % static_cast<std::int64_t>(epochs_.size()))];
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  ++e.buckets[static_cast<std::size_t>(it - edges_.begin())];
  ++e.count;
  e.sum += v;
}

WindowSnapshot SlidingHistogram::merged_at(double now_s) const {
  const std::scoped_lock lock(mu_);
  WindowSnapshot out;
  out.window_s = window_s_;
  out.upper_edges = edges_;
  out.bucket_counts.assign(edges_.size() + 1, 0);
  const auto oldest = static_cast<std::int64_t>(
      std::floor((now_s - window_s_) / epoch_s_));
  for (const Epoch& e : epochs_) {
    if (e.index < 0 || e.index < oldest) continue;
    for (std::size_t b = 0; b < e.buckets.size(); ++b) {
      out.bucket_counts[b] += e.buckets[b];
    }
    out.count += e.count;
    out.sum += e.sum;
  }
  return out;
}

TimeSeriesRing::TimeSeriesRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 2)) {
  buf_.reserve(capacity_);
}

void TimeSeriesRing::push(double t_s, double value) {
  const std::scoped_lock lock(mu_);
  if (buf_.size() < capacity_) {
    buf_.emplace_back(t_s, value);
  } else {
    buf_[head_ % capacity_] = {t_s, value};
  }
  ++head_;
}

std::vector<std::pair<double, double>> TimeSeriesRing::samples() const {
  const std::scoped_lock lock(mu_);
  std::vector<std::pair<double, double>> out;
  out.reserve(buf_.size());
  if (buf_.size() < capacity_) {
    out = buf_;
  } else {
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(buf_[(head_ + i) % capacity_]);
    }
  }
  return out;
}

std::size_t TimeSeriesRing::size() const {
  const std::scoped_lock lock(mu_);
  return buf_.size();
}

std::uint64_t TimeSeriesRing::total_pushed() const {
  const std::scoped_lock lock(mu_);
  return head_;
}

}  // namespace ros::obs
