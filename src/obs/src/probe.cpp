#include "ros/obs/probe.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "ros/obs/bench.hpp"
#include "ros/obs/crash.hpp"
#include "ros/obs/json.hpp"
#include "ros/obs/log.hpp"
#include "ros/obs/metrics.hpp"

namespace ros::obs::probe {

namespace {

std::atomic<int> g_mode{-1};  ///< -1 = not yet read from env
std::atomic<std::uint32_t> g_sample_period{1};
std::atomic<std::size_t> g_max_artifact_bytes{256 * 1024};
std::atomic<std::uint64_t> g_bundles{0};
std::atomic<int> g_seq{0};

int env_mode() {
  const char* v = std::getenv("ROS_OBS_PROBE");
  const Mode m = v == nullptr ? Mode::off : parse_mode(v);
  if (const char* s = std::getenv("ROS_OBS_PROBE_SAMPLE");
      s != nullptr && *s != '\0') {
    char* end = nullptr;
    const long n = std::strtol(s, &end, 10);
    if (end != s && n > 0) {
      g_sample_period.store(static_cast<std::uint32_t>(n),
                            std::memory_order_relaxed);
    }
  }
  return static_cast<int>(m);
}

int mode_raw() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    // First touch: resolve from the environment. Benign race — every
    // thread computes the same value.
    m = env_mode();
    g_mode.store(m, std::memory_order_relaxed);
  }
  return m;
}

struct PendingRead {
  bool capturing = false;
  std::string kind;
  std::uint64_t noise_seed = 0;
  std::uint64_t config_digest = 0;
  /// key -> already-serialized JSON value (number or quoted string).
  std::vector<std::pair<std::string, std::string>> annotations;
  std::vector<std::pair<std::string, std::string>> stages;
  struct Verdict {
    std::string stage;
    bool passed = false;
    std::string detail;
  };
  std::vector<Verdict> funnel;
  bool has_bits = false;
  std::vector<bool> bits;

  void reset() { *this = PendingRead{}; }
};

struct ThreadContext {
  bool has = false;
  std::string scenario;
  std::vector<bool> expected_bits;
};

PendingRead& pending() {
  static thread_local PendingRead p;
  return p;
}

ThreadContext& context() {
  static thread_local ThreadContext c;
  return c;
}

std::string& last_path() {
  static thread_local std::string p;
  return p;
}

/// 1 in sample_period() reads capture in Mode::always; per-thread
/// countdown so the decision costs one decrement.
bool should_sample() {
  const std::uint32_t period =
      g_sample_period.load(std::memory_order_relaxed);
  if (period <= 1) return true;
  static thread_local std::uint32_t countdown = 0;
  if (countdown == 0) {
    countdown = period - 1;
    return true;
  }
  --countdown;
  return false;
}

std::string sanitize_reason(std::string_view reason) {
  std::string out;
  for (const char c : reason.substr(0, 48)) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("read") : out;
}

void write_bits(JsonWriter& w, const std::vector<bool>& bits) {
  w.begin_array();
  for (const bool b : bits) w.value(b);
  w.end_array();
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

std::string render_bundle(const PendingRead& p, const ThreadContext& ctx,
                          std::string_view reason, bool bit_mismatch) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("ros-read-provenance-v1");
  w.key("kind").value(p.kind);
  w.key("reason").value(reason);
  w.key("t_iso").value(utc_timestamp_iso8601());
  w.key("pid").value(static_cast<std::int64_t>(::getpid()));

  const BuildInfo b = build_info();
  w.key("build").begin_object();
  w.key("git_sha").value(b.git_sha);
  w.key("compiler").value(b.compiler);
  w.key("flags").value(b.flags);
  w.key("build_type").value(b.build_type);
  w.end_object();
  const HostInfo h = host_info();
  w.key("host").begin_object();
  w.key("os").value(h.os);
  w.key("arch").value(h.arch);
  w.key("hostname").value(h.hostname);
  w.key("n_cpus").value(h.n_cpus);
  w.end_object();

  // Seeds + digest: everything replay needs beyond the scenario. Frame
  // i's noise stream is derive_stream_seed(noise_seed, i).
  w.key("config").begin_object();
  char hex[32];
  std::snprintf(hex, sizeof(hex), "0x%016llx",
                static_cast<unsigned long long>(p.config_digest));
  w.key("digest").value(hex);
  w.key("noise_seed").value(static_cast<std::uint64_t>(p.noise_seed));
  w.key("rng_stream_rule")
      .value("frame i draws from derive_stream_seed(noise_seed, i)");
  w.end_object();

  if (ctx.has) {
    w.key("scenario").value(ctx.scenario);
    w.key("expected_bits");
    write_bits(w, ctx.expected_bits);
  }
  if (p.has_bits) {
    w.key("decoded_bits");
    write_bits(w, p.bits);
  }
  w.key("bit_mismatch").value(bit_mismatch);

  w.key("funnel").begin_array();
  for (const auto& v : p.funnel) {
    w.begin_object();
    w.key("stage").value(v.stage);
    w.key("passed").value(v.passed);
    w.key("detail").value(v.detail);
    w.end_object();
  }
  w.end_array();

  w.key("annotations").begin_object();
  for (const auto& [k, json] : p.annotations) {
    w.key(k).raw(json);
  }
  w.end_object();

  w.key("stages").begin_object();
  for (const auto& [name, json] : p.stages) {
    w.key(name).raw(json);
  }
  w.end_object();

  w.end_object();
  return w.take();
}

std::string write_bundle(const PendingRead& p, const ThreadContext& ctx,
                         std::string_view reason, bool bit_mismatch) {
  const std::string root = diag_dir();
  if (::mkdir(root.c_str(), 0755) != 0 && errno != EEXIST) return {};
  const std::string dir = root + "/reads";
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) return {};

  char name[512];
  std::snprintf(name, sizeof(name), "%s/read-%s-%d-%d.json", dir.c_str(),
                sanitize_reason(reason).c_str(),
                static_cast<int>(::getpid()),
                g_seq.fetch_add(1, std::memory_order_relaxed));
  const std::string body = render_bundle(p, ctx, reason, bit_mismatch);
  if (!write_text_file(name, body)) return {};
  g_bundles.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::global().counter("obs.probe.bundles").inc();
  last_path() = name;
  ROS_LOG_INFO("obs", "read provenance bundle written",
               kv("path", std::string_view(name)), kv("reason", reason));
  return name;
}

/// Decoded-vs-expected comparison: only meaningful when the caller set
/// context and the read recorded bits. A no-read (empty bits) against a
/// non-empty expectation counts as a mismatch.
bool bits_mismatch(const PendingRead& p, const ThreadContext& ctx) {
  if (!ctx.has || !p.has_bits) return false;
  return p.bits != ctx.expected_bits;
}

}  // namespace

const char* to_string(Mode m) {
  switch (m) {
    case Mode::off: return "off";
    case Mode::failure: return "failure";
    case Mode::always: return "always";
  }
  return "off";
}

Mode parse_mode(std::string_view s) {
  if (s == "failure" || s == "fail") return Mode::failure;
  if (s == "always" || s == "on" || s == "1") return Mode::always;
  return Mode::off;
}

Mode mode() { return static_cast<Mode>(mode_raw()); }

void set_mode(Mode m) {
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

void set_sample_period(std::uint32_t n) {
  g_sample_period.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

bool armed() { return mode_raw() != static_cast<int>(Mode::off); }

std::size_t max_artifact_bytes() {
  return g_max_artifact_bytes.load(std::memory_order_relaxed);
}

void set_max_artifact_bytes(std::size_t bytes) {
  g_max_artifact_bytes.store(bytes, std::memory_order_relaxed);
}

bool begin_read(std::string_view kind, std::uint64_t noise_seed,
                std::uint64_t config_digest) {
  PendingRead& p = pending();
  p.reset();
  if (!armed()) return false;
  if (mode() == Mode::always && !should_sample()) return false;
  p.capturing = true;
  p.kind.assign(kind);
  p.noise_seed = noise_seed;
  p.config_digest = config_digest;
  MetricsRegistry::global().counter("obs.probe.reads_captured").inc();
  return true;
}

bool capturing() { return pending().capturing; }

void annotate(std::string_view key, double value) {
  PendingRead& p = pending();
  if (!p.capturing) return;
  JsonWriter w;
  w.value(value);
  p.annotations.emplace_back(std::string(key), w.take());
}

void annotate(std::string_view key, std::string_view value) {
  PendingRead& p = pending();
  if (!p.capturing) return;
  JsonWriter w;
  w.value(value);
  p.annotations.emplace_back(std::string(key), w.take());
}

void stage_artifact(std::string_view stage, std::string json) {
  PendingRead& p = pending();
  if (!p.capturing) return;
  if (json.size() > max_artifact_bytes()) {
    JsonWriter w;
    w.begin_object();
    w.key("truncated").value(true);
    w.key("bytes").value(static_cast<std::uint64_t>(json.size()));
    w.key("limit").value(static_cast<std::uint64_t>(max_artifact_bytes()));
    w.end_object();
    MetricsRegistry::global().counter("obs.probe.artifacts_dropped").inc();
    p.stages.emplace_back(std::string(stage), w.take());
    return;
  }
  p.stages.emplace_back(std::string(stage), std::move(json));
}

void funnel(std::string_view stage, bool passed, std::string_view detail) {
  PendingRead& p = pending();
  if (!p.capturing) return;
  p.funnel.push_back(
      {std::string(stage), passed, std::string(detail)});
}

void decoded_bits(const std::vector<bool>& bits) {
  PendingRead& p = pending();
  if (!p.capturing) return;
  p.has_bits = true;
  p.bits = bits;
}

void set_context(std::string scenario_text,
                 std::vector<bool> expected_bits) {
  ThreadContext& c = context();
  c.has = true;
  c.scenario = std::move(scenario_text);
  c.expected_bits = std::move(expected_bits);
}

void clear_context() { context() = ThreadContext{}; }

std::string end_read(std::string_view failure_reason) {
  PendingRead& p = pending();
  if (!p.capturing) return {};
  const ThreadContext& ctx = context();
  const bool mismatch = bits_mismatch(p, ctx);
  const bool failed = !failure_reason.empty() || mismatch;
  std::string path;
  if (mode() == Mode::always || (mode() == Mode::failure && failed)) {
    const std::string_view reason = !failure_reason.empty()
                                        ? failure_reason
                                        : (mismatch ? "bit_mismatch"
                                                    : "capture");
    path = write_bundle(p, ctx, reason, mismatch);
  }
  p.reset();
  return path;
}

std::string abort_read(std::string_view reason) {
  PendingRead& p = pending();
  if (!p.capturing) return {};
  const ThreadContext& ctx = context();
  const std::string path =
      write_bundle(p, ctx, reason.empty() ? "aborted" : reason,
                   bits_mismatch(p, ctx));
  p.reset();
  return path;
}

std::string last_bundle_path() { return last_path(); }

std::uint64_t bundles_written() {
  return g_bundles.load(std::memory_order_relaxed);
}

std::string reads_dir() { return diag_dir() + "/reads"; }

}  // namespace ros::obs::probe
