#include "ros/obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace ros::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_for_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  comma_for_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma_for_value();
  out_ += json;
  return *this;
}

}  // namespace ros::obs
