#include "ros/obs/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace ros::obs {

namespace {

std::atomic<int>& level_slot() {
  // First touch seeds from the environment; set_log_level overrides.
  static std::atomic<int> level = [] {
    const char* env = std::getenv("ROS_LOG_LEVEL");
    const LogLevel lvl =
        env ? parse_log_level(env, LogLevel::warn) : LogLevel::warn;
    return static_cast<int>(lvl);
  }();
  return level;
}

std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

/// ISO-8601 UTC with millisecond precision.
std::string timestamp_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto ms = duration_cast<milliseconds>(now.time_since_epoch()) % 1000;
  const std::time_t t = system_clock::to_time_t(now);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[40];
  const std::size_t n = std::strftime(buf, sizeof(buf), "%FT%T", &tm);
  std::snprintf(buf + n, sizeof(buf) - n, ".%03dZ",
                static_cast<int>(ms.count()));
  return buf;
}

/// Quote a value if it contains characters that would break logfmt.
void append_value(std::string& line, const std::string& value, bool quoted) {
  if (!quoted) {
    line += value;
    return;
  }
  line += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') line += '\\';
    if (c == '\n') { line += "\\n"; continue; }
    line += c;
  }
  line += '"';
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "trace";
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info";
    case LogLevel::warn: return "warn";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off";
  }
  return "unknown";
}

LogLevel parse_log_level(std::string_view text, LogLevel fallback) {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  if (lower == "trace") return LogLevel::trace;
  if (lower == "debug") return LogLevel::debug;
  if (lower == "info") return LogLevel::info;
  if (lower == "warn" || lower == "warning") return LogLevel::warn;
  if (lower == "error") return LogLevel::error;
  if (lower == "off" || lower == "none") return LogLevel::off;
  return fallback;
}

LogLevel log_level() {
  return static_cast<LogLevel>(
      level_slot().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_slot().store(static_cast<int>(level), std::memory_order_relaxed);
}

Field kv(std::string_view key, std::string_view value) {
  return Field{std::string(key), std::string(value), true};
}

Field kv(std::string_view key, const char* value) {
  return kv(key, std::string_view(value));
}

Field kv(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return Field{std::string(key), buf, false};
}

Field kv(std::string_view key, bool value) {
  return Field{std::string(key), value ? "true" : "false", false};
}

std::string format_log_line(LogLevel level, std::string_view component,
                            std::string_view message,
                            std::initializer_list<Field> fields) {
  std::string line;
  line.reserve(96 + message.size());
  line += "ts=";
  line += timestamp_now();
  line += " level=";
  line += to_string(level);
  line += " component=";
  line += component;
  line += " msg=";
  append_value(line, std::string(message), true);
  for (const Field& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    append_value(line, f.value, f.quoted);
  }
  return line;
}

void write_log(LogLevel level, std::string_view component,
               std::string_view message,
               std::initializer_list<Field> fields) {
  const std::string line =
      format_log_line(level, component, message, fields);
  const std::scoped_lock lock(sink_mutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace ros::obs
