#include "ros/obs/bench_compare.hpp"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace ros::obs {

namespace {

double median_wall_ms(const JsonValue& bench) {
  const JsonValue* v = bench.at("wall_ms", "median");
  return v == nullptr ? 0.0 : v->number_or(0.0);
}

/// Appends fidelity failures of `entry` ("<name>: value out of
/// [lo, hi]") to notes; returns the failure count.
int fidelity_failures(const JsonValue& bench,
                      std::vector<std::string>& notes) {
  const JsonValue* fid = bench.find("fidelity");
  if (fid == nullptr || !fid->is_object()) return 0;
  int failures = 0;
  for (const auto& [name, check] : fid->object) {
    if (check.at("pass") != nullptr && check.at("pass")->bool_or(true)) {
      continue;
    }
    ++failures;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "fidelity %s: value %.6g outside [%.6g, %.6g]",
                  name.c_str(),
                  check.at("value") ? check.at("value")->number_or(0.0)
                                    : 0.0,
                  check.at("lo") ? check.at("lo")->number_or(0.0) : 0.0,
                  check.at("hi") ? check.at("hi")->number_or(0.0) : 0.0);
    notes.push_back(buf);
  }
  return failures;
}

/// Fidelity checks present in the baseline but gone from the new run
/// are coverage loss and count as drift.
int missing_fidelity(const JsonValue& base_bench,
                     const JsonValue& new_bench,
                     std::vector<std::string>& notes) {
  const JsonValue* base_fid = base_bench.find("fidelity");
  if (base_fid == nullptr || !base_fid->is_object()) return 0;
  const JsonValue* new_fid = new_bench.find("fidelity");
  int lost = 0;
  for (const auto& [name, unused] : base_fid->object) {
    (void)unused;
    if (new_fid == nullptr || new_fid->find(name) == nullptr) {
      ++lost;
      notes.push_back("fidelity " + name +
                      ": present in baseline, missing from new run");
    }
  }
  return lost;
}

/// Baseline-driven throughput diff (flat name -> events/second map,
/// better-is-higher): a drop below base/ratio is a regression, and a
/// name that vanished from the new run is too (coverage loss). Both are
/// warn-only, like wall-time regressions.
int throughput_regressions(const JsonValue& base_bench,
                           const JsonValue& new_bench, double ratio,
                           std::vector<std::string>& notes) {
  const JsonValue* base_thr = base_bench.find("throughput");
  if (base_thr == nullptr || !base_thr->is_object()) return 0;
  const JsonValue* new_thr = new_bench.find("throughput");
  int regressions = 0;
  for (const auto& [name, base_v] : base_thr->object) {
    const double base_per_s = base_v.number_or(0.0);
    if (base_per_s <= 0.0) continue;
    const JsonValue* new_v =
        new_thr != nullptr ? new_thr->find(name) : nullptr;
    if (new_v == nullptr) {
      ++regressions;
      notes.push_back("throughput " + name +
                      ": present in baseline, missing from new run");
      continue;
    }
    const double new_per_s = new_v->number_or(0.0);
    if (new_per_s * ratio < base_per_s) {
      ++regressions;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "throughput %s: %.6g -> %.6g per_s (below "
                    "baseline/%.2f)",
                    name.c_str(), base_per_s, new_per_s, ratio);
      notes.push_back(buf);
    }
  }
  return regressions;
}

}  // namespace

std::string_view to_string(BenchVerdict v) {
  switch (v) {
    case BenchVerdict::pass: return "pass";
    case BenchVerdict::perf_regression: return "PERF-REGRESSION";
    case BenchVerdict::fidelity_drift: return "FIDELITY-DRIFT";
    case BenchVerdict::missing_in_new: return "MISSING";
    case BenchVerdict::new_bench: return "new";
  }
  return "?";
}

CompareReport compare_runs(const JsonValue& new_run,
                           const JsonValue& baseline,
                           const CompareOptions& opts) {
  CompareReport report;
  const JsonValue* new_benches = new_run.find("benches");
  const JsonValue* base_benches = baseline.find("benches");
  if (new_benches == nullptr || !new_benches->is_object() ||
      base_benches == nullptr || !base_benches->is_object()) {
    report.parse_ok = false;
    report.parse_error = "missing \"benches\" object in one of the runs";
    return report;
  }

  // Baseline-driven pass: every baseline bench must appear and hold.
  for (const auto& [name, base_bench] : base_benches->object) {
    BenchDelta d;
    d.name = name;
    d.base_median_ms = median_wall_ms(base_bench);
    const JsonValue* thr = base_bench.find("perf_threshold_ratio");
    d.threshold = thr != nullptr ? thr->number_or(opts.default_perf_ratio)
                                 : opts.default_perf_ratio;

    const JsonValue* new_bench = new_benches->find(name);
    if (new_bench == nullptr) {
      d.verdict = BenchVerdict::missing_in_new;
      if (!opts.allow_missing) ++report.missing;
      report.benches.push_back(std::move(d));
      continue;
    }
    d.new_median_ms = median_wall_ms(*new_bench);
    d.ratio = d.base_median_ms > 0.0 ? d.new_median_ms / d.base_median_ms
                                     : 0.0;

    int drift = fidelity_failures(*new_bench, d.notes);
    drift += missing_fidelity(base_bench, *new_bench, d.notes);
    const bool slowed =
        d.base_median_ms > 0.0 && d.ratio > d.threshold &&
        (d.new_median_ms - d.base_median_ms) > opts.min_abs_delta_ms;
    const int thr_regs = throughput_regressions(
        base_bench, *new_bench, opts.default_throughput_ratio, d.notes);
    report.throughput_regressions += thr_regs;
    if (drift > 0) {
      d.verdict = BenchVerdict::fidelity_drift;
      report.fidelity_failures += drift;
      // A bench can drift and regress at once; keep the perf count too.
      if (slowed) ++report.perf_regressions;
    } else if (slowed) {
      d.verdict = BenchVerdict::perf_regression;
      ++report.perf_regressions;
    } else if (thr_regs > 0) {
      // Throughput drops surface with the perf verdict but are tallied
      // separately so the summary says which gate tripped.
      d.verdict = BenchVerdict::perf_regression;
    }
    report.benches.push_back(std::move(d));
  }

  // New benches without a baseline entry: informational only (the
  // baseline needs a refresh to start gating them).
  for (const auto& [name, new_bench] : new_benches->object) {
    if (base_benches->find(name) != nullptr) continue;
    BenchDelta d;
    d.name = name;
    d.verdict = BenchVerdict::new_bench;
    d.new_median_ms = median_wall_ms(new_bench);
    // Fidelity envelopes still gate even before a perf baseline exists.
    const int drift = fidelity_failures(new_bench, d.notes);
    if (drift > 0) {
      d.verdict = BenchVerdict::fidelity_drift;
      report.fidelity_failures += drift;
    }
    report.benches.push_back(std::move(d));
  }
  return report;
}

int CompareReport::exit_code(bool perf_warn_only) const {
  if (!parse_ok) return 3;
  if (fidelity_failures > 0 || missing > 0) return 2;
  if ((perf_regressions > 0 || throughput_regressions > 0) &&
      !perf_warn_only) {
    return 1;
  }
  return 0;
}

std::string CompareReport::render() const {
  std::ostringstream os;
  if (!parse_ok) {
    os << "bench_compare: " << parse_error << "\n";
    return os.str();
  }
  char line[256];
  os << "bench                          base_ms      new_ms   ratio  "
        "verdict\n";
  for (const BenchDelta& d : benches) {
    std::snprintf(line, sizeof(line), "%-28s %9.3f  %9.3f  %6.2f  %s\n",
                  d.name.c_str(), d.base_median_ms, d.new_median_ms,
                  d.ratio, std::string(to_string(d.verdict)).c_str());
    os << line;
    for (const std::string& n : d.notes) os << "    " << n << "\n";
  }
  os << "summary: " << perf_regressions << " perf regression(s), "
     << throughput_regressions << " throughput regression(s), "
     << fidelity_failures << " fidelity failure(s), " << missing
     << " missing bench(es)\n";
  return os.str();
}

CompareReport compare_run_files(const std::string& new_path,
                                const std::string& baseline_path,
                                const CompareOptions& opts) {
  const auto slurp = [](const std::string& path,
                        std::string* out) -> bool {
    std::ifstream f(path, std::ios::binary);
    if (!f) return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    *out = ss.str();
    return true;
  };
  CompareReport bad;
  bad.parse_ok = false;
  std::string new_text;
  std::string base_text;
  if (!slurp(new_path, &new_text)) {
    bad.parse_error = "cannot read " + new_path;
    return bad;
  }
  if (!slurp(baseline_path, &base_text)) {
    bad.parse_error = "cannot read " + baseline_path;
    return bad;
  }
  std::string err;
  const auto new_doc = json_parse(new_text, &err);
  if (!new_doc) {
    bad.parse_error = new_path + ": " + err;
    return bad;
  }
  const auto base_doc = json_parse(base_text, &err);
  if (!base_doc) {
    bad.parse_error = baseline_path + ": " + err;
    return bad;
  }
  return compare_runs(*new_doc, *base_doc, opts);
}

}  // namespace ros::obs
