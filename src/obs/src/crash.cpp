#include "ros/obs/crash.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ros/obs/bench.hpp"
#include "ros/obs/export.hpp"
#include "ros/obs/flight_recorder.hpp"
#include "ros/obs/json.hpp"
#include "ros/obs/log.hpp"
#include "ros/obs/metrics.hpp"
#include "ros/obs/trace.hpp"
#include "ros/obs/window.hpp"

namespace ros::obs {

namespace {

constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
                                 SIGILL};

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "sigsegv";
    case SIGABRT: return "sigabrt";
    case SIGBUS: return "sigbus";
    case SIGFPE: return "sigfpe";
    case SIGILL: return "sigill";
    default: return "signal";
  }
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

std::atomic<bool> g_handlers_installed{false};
std::atomic<int> g_crash_depth{0};

extern "C" void ros_obs_crash_handler(int sig) {
  // First crasher wins; a second fault (including one raised by the
  // bundle write itself) falls straight through to the re-raise.
  if (g_crash_depth.fetch_add(1, std::memory_order_acq_rel) == 0) {
    TraceExporter::global().crash_finalize();
    write_diagnostics_bundle(signal_name(sig));
  }
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

std::string diag_dir() {
  const char* v = std::getenv("ROS_OBS_DIAG_DIR");
  return (v == nullptr || *v == '\0') ? std::string("ros-diag")
                                      : std::string(v);
}

std::string write_diagnostics_bundle(std::string_view reason) {
  static std::atomic<int> seq{0};
  const std::string root = diag_dir();
  if (::mkdir(root.c_str(), 0755) != 0 && errno != EEXIST) return {};
  char name[256];
  std::snprintf(name, sizeof(name), "%s/%.*s-%d-%d", root.c_str(),
                static_cast<int>(std::min<std::size_t>(reason.size(), 64)),
                reason.data(), static_cast<int>(::getpid()),
                seq.fetch_add(1, std::memory_order_relaxed));
  if (::mkdir(name, 0755) != 0 && errno != EEXIST) return {};
  const std::string dir(name);

  // flight.json first, through the fd path: it is the file most worth
  // having when the heap is suspect.
  {
    const std::string path = dir + "/flight.json";
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      FlightRecorder::global().dump_json_fd(fd);
      ::close(fd);
    }
  }

  {
    JsonWriter w;
    w.begin_object();
    w.key("schema").value("ros-provenance-v1");
    w.key("reason").value(reason);
    w.key("pid").value(static_cast<std::int64_t>(::getpid()));
    w.key("t_mono_s").value(monotonic_s());
    const BuildInfo b = build_info();
    w.key("build").begin_object();
    w.key("git_sha").value(b.git_sha);
    w.key("compiler").value(b.compiler);
    w.key("flags").value(b.flags);
    w.key("build_type").value(b.build_type);
    w.end_object();
    const HostInfo h = host_info();
    w.key("host").begin_object();
    w.key("os").value(h.os);
    w.key("arch").value(h.arch);
    w.key("hostname").value(h.hostname);
    w.key("n_cpus").value(h.n_cpus);
    w.end_object();
    w.end_object();
    write_text_file(dir + "/provenance.json", w.take());
  }

  write_text_file(dir + "/metrics.json",
                  MetricsRegistry::global().snapshot().to_json());
  write_text_file(dir + "/series.json",
                  SnapshotExporter::global().series_json());
  return dir;
}

void install_crash_handlers() {
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(expected, true)) {
    return;
  }
  // Construct every singleton the handler will touch now, while the
  // process is healthy.
  (void)TraceExporter::global();
  (void)FlightRecorder::global();
  (void)MetricsRegistry::global();
  (void)SnapshotExporter::global();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = ros_obs_crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  for (const int sig : kCrashSignals) {
    ::sigaction(sig, &sa, nullptr);
  }
}

bool crash_handlers_installed() {
  return g_handlers_installed.load(std::memory_order_relaxed);
}

void maybe_install_crash_handlers_from_env() {
  static const bool done = [] {
    if (const char* v = std::getenv("ROS_OBS_CRASH_HANDLERS");
        v != nullptr &&
        (std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0)) {
      install_crash_handlers();
    }
    return true;
  }();
  (void)done;
}

Watchdog& Watchdog::global() {
  static Watchdog* watchdog = new Watchdog();  // leaked: poller-safe
  return *watchdog;
}

Watchdog::Slot& Watchdog::thread_slot() {
  thread_local Slot* cached = nullptr;
  if (cached == nullptr) {
    const std::scoped_lock lock(slots_mu_);
    slots_.push_back(std::make_unique<Slot>());
    slots_.back()->tid = static_cast<std::uint16_t>(
        TraceExporter::this_thread_id() & 0xffff);
    cached = slots_.back().get();
  }
  return *cached;
}

void Watchdog::arm(std::string_view name, double deadline_ms,
                   std::uint64_t frame) {
  Slot& slot = thread_slot();
  slot.name_id.store(FlightRecorder::global().intern(name),
                     std::memory_order_relaxed);
  slot.frame.store(frame, std::memory_order_relaxed);
  slot.flagged.store(false, std::memory_order_relaxed);
  const auto deadline_us = static_cast<std::int64_t>(
      (monotonic_s() + deadline_ms / 1000.0) * 1e6);
  // Release so the poller sees name/frame once the deadline is live.
  slot.deadline_us.store(std::max<std::int64_t>(deadline_us, 1),
                         std::memory_order_release);
}

void Watchdog::disarm() {
  thread_slot().deadline_us.store(0, std::memory_order_release);
}

std::size_t Watchdog::poll_now_at(double now_s) {
  const auto now_us = static_cast<std::int64_t>(now_s * 1e6);
  std::size_t newly_flagged = 0;
  const std::scoped_lock lock(slots_mu_);
  for (const auto& slot : slots_) {
    const std::int64_t deadline =
        slot->deadline_us.load(std::memory_order_acquire);
    if (deadline == 0 || now_us <= deadline) continue;
    if (slot->flagged.exchange(true, std::memory_order_relaxed)) {
      continue;  // already reported this arm
    }
    ++newly_flagged;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t frame =
        slot->frame.load(std::memory_order_relaxed);
    const std::uint32_t name_id =
        slot->name_id.load(std::memory_order_relaxed);
    MetricsRegistry::global().counter("obs.watchdog.stalls").inc();
    FlightRecorder::global().record(FlightKind::stall, name_id, frame);
    ROS_LOG_WARN("obs", "watchdog: frame past deadline",
                 kv("frame", frame), kv("tid", slot->tid),
                 kv("overdue_us", now_us - deadline));
  }
  return newly_flagged;
}

std::size_t Watchdog::poll_now() { return poll_now_at(monotonic_s()); }

void Watchdog::start(double poll_ms) {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  stop_requested_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this, poll_ms] { thread_main(poll_ms); });
}

void Watchdog::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  {
    const std::scoped_lock lock(wake_mu_);
    stop_requested_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

void Watchdog::thread_main(double poll_ms) {
  const auto interval =
      std::chrono::duration<double, std::milli>(std::max(poll_ms, 1.0));
  std::unique_lock lock(wake_mu_);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    wake_cv_.wait_for(lock, interval, [this] {
      return stop_requested_.load(std::memory_order_relaxed);
    });
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    lock.unlock();
    const std::size_t flagged = poll_now();
    if (flagged > 0) {
      if (const char* v = std::getenv("ROS_OBS_WATCHDOG_BUNDLE");
          v != nullptr && std::strcmp(v, "1") == 0) {
        write_diagnostics_bundle("stall");
      }
    }
    lock.lock();
  }
}

}  // namespace ros::obs
