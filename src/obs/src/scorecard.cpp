#include "ros/obs/scorecard.hpp"

#include <algorithm>

#include "ros/obs/json.hpp"

namespace ros::obs {

void Scorecard::record(std::string_view name, double value, double lo,
                      double hi, std::string_view note) {
  for (FidelityCheck& c : checks_) {
    if (c.name == name) {
      c.value = value;
      c.lo = lo;
      c.hi = hi;
      c.note = std::string(note);
      return;
    }
  }
  checks_.push_back({std::string(name), value, lo, hi, std::string(note)});
}

const FidelityCheck* Scorecard::find(std::string_view name) const {
  const auto it = std::find_if(
      checks_.begin(), checks_.end(),
      [&](const FidelityCheck& c) { return c.name == name; });
  return it == checks_.end() ? nullptr : &*it;
}

bool Scorecard::all_pass() const { return failures() == 0; }

std::size_t Scorecard::failures() const {
  std::size_t n = 0;
  for (const FidelityCheck& c : checks_) n += c.pass() ? 0 : 1;
  return n;
}

void Scorecard::write_json(JsonWriter& w) const {
  w.begin_object();
  for (const FidelityCheck& c : checks_) {
    w.key(c.name).begin_object();
    w.key("value").value(c.value);
    w.key("lo").value(c.lo);
    w.key("hi").value(c.hi);
    w.key("pass").value(c.pass());
    if (!c.note.empty()) w.key("note").value(c.note);
    w.end_object();
  }
  w.end_object();
}

}  // namespace ros::obs
