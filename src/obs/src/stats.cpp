#include "ros/obs/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ros::obs {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(
      v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double mad(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double med = median(v);
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) dev.push_back(std::abs(x - med));
  return median(std::move(dev));
}

SampleStats SampleStats::from(const std::vector<double>& v) {
  SampleStats s;
  s.n = v.size();
  if (v.empty()) return s;
  s.min = *std::min_element(v.begin(), v.end());
  s.max = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (double x : v) sum += x;
  s.mean = sum / static_cast<double>(v.size());
  s.median = ros::obs::median(v);
  s.mad = ros::obs::mad(v);
  return s;
}

double quantile_from_buckets(std::span<const double> upper_edges,
                             std::span<const std::uint64_t> bucket_counts,
                             double q) {
  if (upper_edges.empty() ||
      bucket_counts.size() != upper_edges.size() + 1) {
    return 0.0;
  }
  std::uint64_t total = 0;
  for (std::uint64_t c : bucket_counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil so q=0.5 of n=2 lands
  // on the first).
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const double c = static_cast<double>(bucket_counts[i]);
    if (c == 0.0) continue;
    if (cum + c >= target) {
      if (i == upper_edges.size()) {
        // Overflow bucket: no upper bound to interpolate against.
        return upper_edges.back();
      }
      const double lo = i == 0 ? std::min(0.0, upper_edges[0])
                               : upper_edges[i - 1];
      const double hi = upper_edges[i];
      const double frac = (target - cum) / c;
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  return upper_edges.back();
}

}  // namespace ros::obs
