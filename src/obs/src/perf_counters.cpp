#include "ros/obs/perf_counters.hpp"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ros::obs {

#if defined(__linux__)

namespace {

int open_counter(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // group enabled via the leader
  attr.exclude_kernel = 1;               // works at perf_event_paranoid<=2
  attr.exclude_hv = 1;
  attr.inherit = 0;
  attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

/// One counter's scaled value; false when the read fails.
bool read_scaled(int fd, std::uint64_t* out) {
  if (fd < 0) return false;
  struct {
    std::uint64_t value;
    std::uint64_t time_enabled;
    std::uint64_t time_running;
  } buf{};
  if (read(fd, &buf, sizeof(buf)) != sizeof(buf)) return false;
  if (buf.time_running == 0) {
    *out = 0;  // never scheduled (over-committed PMU)
    return buf.value == 0;
  }
  const double scale = static_cast<double>(buf.time_enabled) /
                       static_cast<double>(buf.time_running);
  *out = static_cast<std::uint64_t>(static_cast<double>(buf.value) * scale);
  return true;
}

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  fd_leader_ = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES,
                            -1);
  if (fd_leader_ < 0) {
    error_ = std::string("perf_event_open(cycles): ") +
             std::strerror(errno);
    return;
  }
  // Secondary counters are best-effort: a PMU with few programmable
  // slots can still deliver cycles + instructions.
  fd_instructions_ = open_counter(
      PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, fd_leader_);
  fd_cache_refs_ = open_counter(
      PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES, fd_leader_);
  fd_cache_misses_ = open_counter(
      PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, fd_leader_);
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int fd : {fd_leader_, fd_instructions_, fd_cache_refs_,
                 fd_cache_misses_}) {
    if (fd >= 0) close(fd);
  }
}

void PerfCounterGroup::start() {
  if (!available()) return;
  ioctl(fd_leader_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd_leader_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfCounterSample PerfCounterGroup::stop() {
  PerfCounterSample s;
  if (!available()) return s;
  ioctl(fd_leader_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  s.valid = read_scaled(fd_leader_, &s.cycles);
  // Leave the optional counters at 0 when their fds failed to open.
  read_scaled(fd_instructions_, &s.instructions);
  read_scaled(fd_cache_refs_, &s.cache_references);
  read_scaled(fd_cache_misses_, &s.cache_misses);
  return s;
}

#else  // !__linux__

PerfCounterGroup::PerfCounterGroup()
    : error_("perf_event_open is Linux-only") {}
PerfCounterGroup::~PerfCounterGroup() = default;
void PerfCounterGroup::start() {}
PerfCounterSample PerfCounterGroup::stop() { return {}; }

#endif

}  // namespace ros::obs
