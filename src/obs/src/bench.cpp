#include "ros/obs/bench.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace ros::obs {

namespace {

double process_cpu_ms() {
#if defined(__unix__) || defined(__APPLE__)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) * 1e-6;
  }
#endif
  return 0.0;
}

long peak_rss_kb_now() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return ru.ru_maxrss / 1024;  // bytes on macOS
#else
    return ru.ru_maxrss;  // kB on Linux
#endif
  }
#endif
  return 0;
}

std::string utc_format(const char* fmt) {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(__unix__) || defined(__APPLE__)
  gmtime_r(&now, &tm);
#else
  tm = *std::gmtime(&now);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), fmt, &tm);
  return buf;
}

}  // namespace

BenchTiming run_timed(const std::function<void()>& body,
                      const BenchRunOptions& opts) {
  const int reps = opts.reps < 1 ? 1 : opts.reps;
  for (int i = 0; i < opts.warmup; ++i) body();

  PerfCounterGroup counters;
  const bool use_perf = opts.collect_perf_counters && counters.available();

  std::vector<double> wall_ms;
  std::vector<double> cpu_ms;
  std::vector<double> cycles;
  std::vector<double> instructions;
  std::vector<double> cache_refs;
  std::vector<double> cache_misses;
  wall_ms.reserve(static_cast<std::size_t>(reps));
  cpu_ms.reserve(static_cast<std::size_t>(reps));
  bool perf_ok = use_perf;

  for (int i = 0; i < reps; ++i) {
    const double cpu0 = process_cpu_ms();
    if (use_perf) counters.start();
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    const PerfCounterSample s =
        use_perf ? counters.stop() : PerfCounterSample{};
    const double cpu1 = process_cpu_ms();
    wall_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    cpu_ms.push_back(cpu1 - cpu0);
    if (use_perf && s.valid) {
      cycles.push_back(static_cast<double>(s.cycles));
      instructions.push_back(static_cast<double>(s.instructions));
      cache_refs.push_back(static_cast<double>(s.cache_references));
      cache_misses.push_back(static_cast<double>(s.cache_misses));
    } else {
      perf_ok = false;
    }
  }

  BenchTiming t;
  t.reps = reps;
  t.wall_ms = SampleStats::from(wall_ms);
  t.cpu_ms = SampleStats::from(cpu_ms);
  t.peak_rss_kb = peak_rss_kb_now();
  if (perf_ok) {
    t.perf.valid = true;
    t.perf.cycles = static_cast<std::uint64_t>(median(cycles));
    t.perf.instructions = static_cast<std::uint64_t>(median(instructions));
    t.perf.cache_references =
        static_cast<std::uint64_t>(median(cache_refs));
    t.perf.cache_misses = static_cast<std::uint64_t>(median(cache_misses));
  } else if (opts.collect_perf_counters) {
    t.perf_error = counters.available() ? "perf counter read failed"
                                        : counters.error();
  } else {
    t.perf_error = "disabled";
  }
  return t;
}

BuildInfo build_info() {
  BuildInfo b;
#ifdef ROS_BUILD_GIT_SHA
  b.git_sha = ROS_BUILD_GIT_SHA;
#else
  b.git_sha = "unknown";
#endif
#if defined(__VERSION__)
  b.compiler =
#if defined(__clang__)
      std::string("clang ") + __VERSION__;
#else
      std::string("gcc ") + __VERSION__;
#endif
#else
  b.compiler = "unknown";
#endif
#ifdef ROS_BUILD_CXX_FLAGS
  b.flags = ROS_BUILD_CXX_FLAGS;
#endif
#ifdef ROS_BUILD_TYPE
  b.build_type = ROS_BUILD_TYPE;
#endif
  return b;
}

HostInfo host_info() {
  HostInfo h;
  h.n_cpus = static_cast<int>(std::thread::hardware_concurrency());
#if defined(__unix__) || defined(__APPLE__)
  utsname u{};
  if (uname(&u) == 0) {
    h.os = std::string(u.sysname) + " " + u.release;
    h.arch = u.machine;
    h.hostname = u.nodename;
  }
#endif
  return h;
}

std::string utc_timestamp_compact() { return utc_format("%Y%m%dT%H%M%SZ"); }

std::string utc_timestamp_iso8601() {
  return utc_format("%Y-%m-%dT%H:%M:%SZ");
}

bool arg_take_value(std::string_view arg, std::string_view flag, int argc,
                    char** argv, int& i, std::string* out) {
  if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    *out = std::string(arg.substr(flag.size() + 1));
    return true;
  }
  if (arg == flag && i + 1 < argc) {
    *out = argv[++i];
    return true;
  }
  return false;
}

}  // namespace ros::obs
