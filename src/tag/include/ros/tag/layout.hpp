// Spatial-coding tag layout (paper Sec. 5.2).
//
// An RoS tag holds one *reference* PSVAA stack at d0 = 0 plus up to M-1
// *coding* stacks. Coding slot k (1-based) sits at
//
//   d_k = s_k * (M + k - 2) * delta_c,   s_k = +1 (odd k) / -1 (even k)
//
// alternating sides of the reference so that every coding-stack pair
// spacing falls *outside* the coding band [d_1, d_{M-1}]: same-side pairs
// are closer than d_1, opposite-side pairs farther than d_{M-1}. Bits map
// to slot occupancy: bit k = 1 iff slot k holds a stack.
#pragma once

#include <vector>

#include "ros/common/units.hpp"

namespace ros::tag {

struct LayoutParams {
  /// Number of coding slots (M - 1 bits; the paper's default tag has 4).
  int n_bits = 4;
  /// Unit spacing delta_c in wavelengths (paper default c = 1.5).
  double unit_spacing_lambda = 1.5;
  /// Design frequency fixing the wavelength.
  double design_hz = 79e9;
  /// Horizontal footprint of one stack; 0 = 3 lambda (one PSVAA width).
  double stack_width_m = 0.0;
};

class TagLayout {
 public:
  /// Layout for a given bit pattern (bits.size() == n_bits; bits[k-1] is
  /// slot k).
  static TagLayout from_bits(const std::vector<bool>& bits,
                             const LayoutParams& params = {});

  /// All-ones layout with `n_bits` bits.
  static TagLayout all_ones(const LayoutParams& params = {});

  const LayoutParams& params() const { return params_; }
  const std::vector<bool>& bits() const { return bits_; }

  /// Positions of *present* stacks [m], reference first (at 0).
  const std::vector<double>& stack_positions() const { return positions_; }

  /// Signed slot position [m] of coding slot `k` (1-based), present or not.
  double slot_position(int k) const;

  /// Coding-band spacing [in wavelengths] where slot `k`'s peak appears
  /// in the RCS spectrum: (M + k - 2) * c.
  double slot_spacing_lambda(int k) const;

  /// Number of stacks present (reference + set bits).
  int n_stacks() const { return static_cast<int>(positions_.size()); }

  int n_bits() const { return params_.n_bits; }

  double wavelength() const;

  /// Outermost slot span |d_{M-1}| + |d_{M-2}| in wavelengths (the
  /// aperture the far-field bound uses), regardless of occupancy.
  double span_lambda() const;

  /// Total tag width D = span + 3 lambda (Sec. 5.3).
  double width() const;

  /// Far-field distance 2 D^2 / lambda (Eq. 8) with D = the slot span;
  /// ~2.9 m for the paper's 4-bit tag.
  double far_field_distance() const;

  /// Coding band [low, high] in spacing wavelengths: [ (M-1)c, (2M-3)c ].
  std::pair<double, double> coding_band_lambda() const;

  /// All pairwise spacings between *present* stacks [wavelengths],
  /// including secondary (coding x coding) spacings -- the full predicted
  /// peak set of Eq. 7.
  std::vector<double> pairwise_spacings_lambda() const;

 private:
  TagLayout(LayoutParams params, std::vector<bool> bits);

  LayoutParams params_;
  std::vector<bool> bits_;
  std::vector<double> positions_;
};

}  // namespace ros::tag
