// Tag design serialization -- the "mechanically reconfigurable signage"
// workflow: a municipality designs a tag once (bits, spacing, stack
// size, beam weights), stores the design file, and reproduces the
// physical layout at install time. Plain key=value text, no external
// dependencies.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ros/tag/tag.hpp"

namespace ros::tag {

struct TagDesign {
  std::vector<bool> bits;
  RosTag::Params params;
};

/// Serialize a design to the v1 text format.
std::string serialize_design(const TagDesign& design);

/// Parse a v1 design file. Throws std::invalid_argument on malformed
/// input (unknown version, missing keys, bad numbers).
TagDesign parse_design(std::string_view text);

/// Convenience: instantiate the physical tag from a design.
RosTag build_tag(const TagDesign& design,
                 const ros::em::StriplineStackup* stackup);

}  // namespace ros::tag
