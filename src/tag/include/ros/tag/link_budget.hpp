// Radar link budget (paper Sec. 5.3 "Link budget and detection range"
// and Sec. 8 "Extending the detection range").
#pragma once

namespace ros::tag {

struct RadarLinkBudget {
  double eirp_dbm = 21.0;            ///< P_t + G_t
  double rx_antenna_gain_db = 9.0;   ///< G_ra
  double rx_chain_gain_db = 34.0;    ///< G_ri
  double rx_processing_gain_db = 12.0;  ///< G_rs (4 Rx antennas)
  double noise_figure_db = 15.0;     ///< N_F
  double if_bandwidth_hz = 37.5e6;   ///< B_IF
  double frequency_hz = 79e9;

  /// The paper's TI IWR1443 development-board numbers (Sec. 5.3).
  static RadarLinkBudget ti_iwr1443();

  /// Commercial automotive radar: N_F = 9 dB, EIRP = 50 dBm (Sec. 8).
  static RadarLinkBudget commercial_automotive();

  /// Noise floor L_0 = kT + N_F + 10 log10(B_IF) + G_ra + G_rs [dBm].
  /// For the TI radar this evaluates to ~-62 dBm.
  double noise_floor_dbm() const;

  /// Total receive gain G_r = G_ra + G_ri + G_rs (55 dB for the TI).
  double rx_gain_total_db() const;

  /// Received power [dBm] from a reflector of `sigma_dbsm` at
  /// `distance_m` (Eq. 1), with optional extra two-way loss (fog).
  double received_power_dbm(double sigma_dbsm, double distance_m,
                            double extra_loss_db = 0.0) const;

  /// SNR over the noise floor [dB] at the given geometry.
  double snr_db(double sigma_dbsm, double distance_m,
                double extra_loss_db = 0.0) const;

  /// Maximum distance [m] at which the reflection stays above the noise
  /// floor plus `margin_db`. The paper's worked example: sigma = -23 dBsm
  /// -> ~6.9 m on the TI radar, ~52 m on a commercial radar.
  double max_range_m(double sigma_dbsm, double margin_db = 0.0) const;
};

}  // namespace ros::tag
