// Codebook matched-filter decoder (ROADMAP #3; perf counterpart of the
// FFT decoder in ros/tag/codec.hpp).
//
// The spatial code draws from a small discrete codebook: a tag family
// (n_bits, unit spacing, design frequency) has only 2^n_bits codewords.
// Instead of FFT-ing every read, we precompute each codeword's expected
// coding-band response ONCE via the forward model of Eq. 6/7 — sampled
// at a small family-fixed grid of probe spacings by direct DTFT
// projection — and decode by normalized correlation of the observed
// probe vector against the cached templates. The per-read hot path is:
// shared resample + whiten + window (bit-identical to rcs_spectrum's
// front end), P ~ 25 DTFT projections max-pooled per slot into F ~ 9
// features (the matched-filter analogue of the FFT oracle's window-max
// search), and 2^n_bits ros::simd dot products. No FFT, no heap
// allocation past the result vectors.
//
// Codebooks are cached process-wide, keyed by a digest of every
// DecoderConfig field they depend on, mirroring the FFT plan cache
// (bounded, clear-all on overflow). Cache traffic is observable under
// pipeline.decoder.codebook.{cache_hits,cache_misses,size,build_ms}.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ros/tag/codec.hpp"

namespace ros::tag {

/// Precomputed matched-filter templates for one tag family + spectrum
/// configuration. Immutable after build; shared across threads via
/// shared_ptr<const Codebook>.
struct Codebook {
  std::uint32_t n_codewords = 0;  ///< 2^n_bits
  std::uint32_t n_probes = 0;     ///< P: probe spacings per template
  std::uint32_t n_features = 0;   ///< F: pooled features per template

  /// Probe spacings [wavelengths], ascending: a fan across each slot's
  /// tolerance window (center +/- j * probe_offset_lambda), inter-slot
  /// midpoints, and the coding-band edge guards.
  std::vector<double> probe_spacing_lambda;
  /// 1-based coding slot each probe belongs to; 0 = off-slot guard.
  std::vector<int> probe_slot;
  /// Feature each probe max-pools into: slot k's fan collapses to
  /// feature k-1 (the analogue of the FFT decoder's window max, and
  /// what makes the correlation tolerant of drift-shifted peaks); each
  /// off-slot probe keeps its own feature as a noise anchor.
  std::vector<int> probe_feature;

  /// SoA templates, row-major [codeword][feature]. `tmpl` holds the
  /// pooled expected amplitudes (same normalization as RcsSpectrum
  /// amplitudes); `tmpl_centered` the mean-removed rows the correlation
  /// uses; `tmpl_norm` their L2 norms (0 for the all-zero codeword,
  /// whose template is flat).
  std::vector<double> tmpl;
  std::vector<double> tmpl_centered;
  std::vector<double> tmpl_norm;

  /// Analysis window (resample_points long) + coherent gain, cached so
  /// the decode hot path never calls make_window.
  std::vector<double> window;
  double window_gain = 1.0;

  std::size_t resample_points = 0;  ///< n: uniform-u grid length
  double canonical_u_span = 0.0;    ///< template synthesis u window
  double build_ms = 0.0;            ///< cold-build wall time
  std::uint64_t key = 0;            ///< codebook_digest of the config

  std::span<const double> row(std::uint32_t c) const {
    return {tmpl.data() + static_cast<std::size_t>(c) * n_features,
            n_features};
  }
  std::span<const double> centered_row(std::uint32_t c) const {
    return {tmpl_centered.data() + static_cast<std::size_t>(c) * n_features,
            n_features};
  }
};

/// FNV-1a digest of every DecoderConfig field the codebook depends on
/// (family geometry, spectrum options, codebook options). The cache key;
/// also mixed into the pipeline's config digest.
std::uint64_t codebook_digest(const DecoderConfig& config);

/// Build a codebook from scratch (cold path; milliseconds).
Codebook build_codebook(const DecoderConfig& config);

/// Fetch the codebook for `config` from the process-wide bounded cache,
/// building it on miss. Thread-safe.
std::shared_ptr<const Codebook> codebook_for(const DecoderConfig& config);

/// Drop every cached codebook (tests; resets the size gauge).
void clear_codebook_cache();

/// Matched-filter decoder: correlates the observed whitened probe
/// vector against every cached codeword template. Interchangeable with
/// SpatialDecoder::decode at the bit level for clean reads (tolerance
/// contract in DESIGN.md §10).
class CodebookDecoder {
 public:
  /// Fetches (or builds) the family codebook at construction — the cold
  /// build is charged once here, never per decode.
  explicit CodebookDecoder(DecoderConfig config = {});

  const DecoderConfig& config() const { return config_; }
  const Codebook& codebook() const { return *codebook_; }

  /// Same aperture gate as SpatialDecoder::can_decode (shared so fft /
  /// codebook backends agree on read vs no-read).
  bool can_decode(std::span<const double> u) const;

  /// Decode from (u, linear RSS) samples. Zero steady-state heap
  /// allocation beyond the DecodeResult vectors (scratch lives in the
  /// calling thread's ros::exec::Arena).
  DecodeResult decode(std::span<const double> u,
                      std::span<const double> rss_linear) const;

 private:
  DecoderConfig config_;
  TagLayout reference_layout_;  ///< all-ones layout of the tag family
  std::shared_ptr<const Codebook> codebook_;
};

/// Backend dispatcher the pipeline uses: resolves DecoderConfig.backend
/// (through ROS_DECODER when auto_) at construction and routes decode()
/// to the FFT oracle, the codebook matched filter, or both
/// (cross_check: returns the oracle's bits, attaches the codebook's
/// scores, and counts agreements/mismatches under
/// pipeline.decoder.cross_check.*).
class TagDecoder {
 public:
  explicit TagDecoder(DecoderConfig config = {});

  DecoderBackend backend() const { return resolved_; }
  const DecoderConfig& config() const { return oracle_.config(); }

  bool can_decode(std::span<const double> u) const {
    return oracle_.can_decode(u);
  }

  DecodeResult decode(std::span<const double> u,
                      std::span<const double> rss_linear) const;

 private:
  DecoderBackend resolved_;
  SpatialDecoder oracle_;
  std::shared_ptr<const CodebookDecoder> codebook_;  ///< null when fft
};

}  // namespace ros::tag
