// Analytic multi-stack RCS model (paper Eq. 6 and Eq. 7).
//
// With M stacks at positions d_k and a common single-stack RCS r_T(u),
//
//   r_s(u) = r_T(u) * | sum_k exp(j 2 pi (2 d_k / lambda) u) |^2
//          = r_T(u) * ( M + 2 sum_{k<l} cos(4 pi (d_k - d_l) u / lambda) )
//
// where u = sin(azimuth from broadside). Fourier-transforming over u
// turns every pairwise spacing into a spectral peak at that spacing --
// the tag's "barcode".
#pragma once

#include <span>
#include <vector>

#include "ros/common/units.hpp"
#include "ros/tag/layout.hpp"

namespace ros::tag {

using ros::common::cplx;

/// Array-factor field sum of Eq. 6: sum_k exp(j 4 pi d_k u / lambda).
cplx multi_stack_field_factor(std::span<const double> positions_m, double u,
                              double lambda_m);

/// Analytic multi-stack RCS (linear, relative to a unit single-stack RCS)
/// at u = sin(azimuth).
double multi_stack_rcs_factor(const TagLayout& layout, double u);

/// A predicted spectral peak (Eq. 7).
struct PredictedPeak {
  double spacing_lambda = 0.0;  ///< peak position in the RCS spectrum
  bool is_coding = false;       ///< true if reference-to-coding (a bit peak)
  int slot = 0;                 ///< slot index for coding peaks, else 0
};

/// All predicted peaks of a layout: coding peaks (reference x coding) and
/// secondary peaks (coding x coding), sorted by spacing.
std::vector<PredictedPeak> predicted_peaks(const TagLayout& layout);

/// Verifies the interference-freedom property of Sec. 5.2: no secondary
/// peak falls within `guard_lambda` of a coding slot.
bool coding_band_clean(const TagLayout& layout, double guard_lambda = 0.5);

}  // namespace ros::tag
