// Encoding-capacity and design-tradeoff model (paper Sec. 5.3).
#pragma once

namespace ros::tag {

struct CapacityModel {
  int n_bits = 4;                     ///< M - 1 coding bits
  double unit_spacing_lambda = 1.5;   ///< delta_c = c * lambda
  double design_hz = 79e9;

  /// Outermost stack span |d_{M-1}| + |d_{M-2}| in wavelengths:
  /// (4M - 7) c. This is the aperture the paper uses for the far-field
  /// bound and the highest pairwise tone in the RCS spectrum.
  double span_lambda() const;

  /// Tag width D = ((4M - 7) c + 3) lambda [m] (span plus one stack
  /// footprint).
  double tag_width_m() const;

  /// Far-field distance 2 D^2 / lambda (Eq. 8) with D = the stack span.
  /// The paper's 4-bit example: ~2.9 m.
  double far_field_distance_m() const;

  /// Largest *coding* spacing (2M - 3) c in wavelengths.
  double max_coding_spacing_lambda() const;

  /// Maximum vehicle speed [m/s] the tag supports at frame rate
  /// `frame_rate_hz` (Eq. 9): the per-frame travel must keep the u-domain
  /// sampling above Nyquist for the highest pairwise tone (2 * span /
  /// lambda cycles per unit u), evaluated at the far-field distance where
  /// du/ds is steepest (1/d). The paper quotes ~38.5 m/s (86 mph) at
  /// 1 kHz; this model gives ~37 m/s.
  double max_vehicle_speed_mps(double frame_rate_hz,
                               double nyquist_margin = 1.0) const;

  /// Minimum separation [m] between two side-by-side tags so a radar
  /// with `n_rx` antennas can isolate them at distance `distance_m`
  /// (Sec. 5.3: angular separation > 1/N_r rad; 1.53 m at 6 m for
  /// N_r = 4).
  double min_tag_separation_m(int n_rx, double distance_m) const;
};

}  // namespace ros::tag
