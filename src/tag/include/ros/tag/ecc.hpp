// Error-correcting coding over RoS payloads (paper Sec. 8: "larger
// encoding capacity also allows for error correction mechanisms to
// improve the reliability of decoding").
//
// Hamming(7,4): 4 data bits protected by 3 parity bits fit exactly into
// a 7-coding-slot tag (M = 8 stacks) and correct any single slot error
// -- e.g. one coding peak faded below threshold or one noise spike.
#pragma once

#include <vector>

namespace ros::tag {

/// Encode 4 data bits into a 7-bit Hamming codeword (bit order:
/// p1 p2 d1 p3 d2 d3 d4, the classic positional layout).
std::vector<bool> hamming74_encode(const std::vector<bool>& data);

struct EccDecodeResult {
  std::vector<bool> data;    ///< the 4 corrected data bits
  bool corrected = false;    ///< a single-bit error was fixed
  int error_position = -1;   ///< 0-based position of the fixed bit, or -1
};

/// Decode a 7-bit codeword, correcting up to one bit error.
EccDecodeResult hamming74_decode(const std::vector<bool>& code);

/// Encode an arbitrary-length payload in 4-bit blocks (padded with
/// zeros) into 7-bit blocks.
std::vector<bool> hamming74_encode_blocks(const std::vector<bool>& data);

/// Decode a multiple-of-7 codeword stream; `corrected_blocks` counts how
/// many blocks needed a fix.
struct EccBlockResult {
  std::vector<bool> data;
  int corrected_blocks = 0;
};
EccBlockResult hamming74_decode_blocks(const std::vector<bool>& code);

}  // namespace ros::tag
