// Spatial-coding encoder/decoder (paper Sec. 5.2 and Sec. 6).
//
// Encoding is layout construction (TagLayout::from_bits). Decoding takes
// (u, RSS) samples gathered while driving past the tag, computes the RCS
// frequency spectrum, reads the amplitude at each coding slot, normalizes
// by the overall power in the coding band, and thresholds to bits.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "ros/dsp/spectrum.hpp"
#include "ros/tag/layout.hpp"

namespace ros::tag {

/// Which decode engine the pipeline runs (see ros/tag/codebook.hpp for
/// the dispatcher). `auto_` defers to the ROS_DECODER environment
/// variable at decoder construction; unset (or unknown) means fft.
enum class DecoderBackend {
  auto_ = 0,
  fft,          ///< SpatialDecoder: FFT + per-slot peak picking (oracle)
  codebook,     ///< CodebookDecoder: matched filter vs cached codebook
  cross_check,  ///< run both; return fft bits, flag any disagreement
};

const char* to_string(DecoderBackend backend);

/// Parse "auto" / "fft" / "codebook" / "cross_check". False on unknown.
bool parse_decoder_backend(std::string_view name, DecoderBackend& out);

/// Resolve auto_ through ROS_DECODER (unset or unrecognized -> fft;
/// unrecognized values warn once per process). Explicit backends pass
/// through unchanged.
DecoderBackend resolve_decoder_backend(DecoderBackend configured);

/// Knobs of the codebook matched-filter decoder. Part of the codebook
/// cache key (see codebook_digest).
struct CodebookOptions {
  /// u-window width of the canonical grid codeword templates are
  /// synthesized on. Normalized correlation is robust to modest
  /// mismatch against the observed span (golden drives span ~1.3).
  double canonical_u_span = 1.2;
  /// Probes are placed at each slot spacing and +/- j * this offset
  /// (wavelengths) for j = 1..probes_per_side, then max-pooled per slot
  /// before correlation — the matched-filter analogue of the FFT
  /// oracle's window-max search, tolerant of the same peak shifts
  /// (odometry drift, multipath). The fan must stay inside the oracle's
  /// window: probes_per_side * probe_offset_lambda must not exceed
  /// DecoderConfig.slot_tolerance_lambda.
  double probe_offset_lambda = 0.2;
  int probes_per_side = 2;
};

struct DecoderConfig {
  /// Expected number of coding slots (must match the tag family).
  int n_bits = 4;
  /// Expected unit spacing delta_c in wavelengths.
  double unit_spacing_lambda = 1.5;
  double design_hz = 79e9;
  /// Peak search window around each slot, in wavelengths.
  double slot_tolerance_lambda = 0.4;
  /// Bit decision threshold: slot amplitude relative to the coding-band
  /// RMS amplitude. With envelope whitening, "1" peaks normalize to
  /// >= ~0.96 and "0" slots to <= ~0.65 across all bit patterns and
  /// realistic geometries; 0.8 splits them centrally.
  double threshold = 0.8;
  /// Absolute modulation-depth floor on the whitened-RCS spectrum: a
  /// present stack modulates the tag's RCS by >= 2/M relative to its
  /// mean, which appears as a spectral peak of ~1/M; thermal-noise
  /// maxima at usable RSS SNRs stay below ~0.04. A slot must clear BOTH
  /// thresholds, which keeps an all-zero (reference-only) tag or a noise
  /// floor from decoding as spurious ones.
  double min_modulation = 0.04;
  ros::dsp::SpectrumOptions spectrum{};
  /// Decode engine selection (TagDecoder dispatches; SpatialDecoder and
  /// CodebookDecoder ignore it and always run their own algorithm).
  DecoderBackend backend = DecoderBackend::auto_;
  CodebookOptions codebook{};
};

struct DecodeResult {
  std::vector<bool> bits;
  /// Per-slot amplitude normalized by coding-band RMS (the OOK decision
  /// variable; feed these to ros::dsp::ook_snr across repeated reads).
  std::vector<double> slot_amplitudes;
  /// Per-slot absolute spectral amplitude (modulation depth).
  std::vector<double> slot_modulation;
  double band_rms = 0.0;
  double threshold = 0.0;
  ros::dsp::RcsSpectrum spectrum;
  /// Engine that produced `bits` (cross_check reports the fft oracle's
  /// bits with the codebook's scores attached).
  DecoderBackend backend_used = DecoderBackend::fft;
  /// Normalized correlation against every codeword (codebook/cross_check
  /// backends only; empty for fft). Index = codeword, bit k of the index
  /// = coding slot k+1.
  std::vector<double> codeword_scores;
  std::uint32_t best_codeword = 0;  ///< arg-max of codeword_scores
  double score_margin = 0.0;        ///< best minus runner-up score
  /// cross_check only: the two engines decoded different bits.
  bool cross_check_mismatch = false;
};

class SpatialDecoder {
 public:
  explicit SpatialDecoder(DecoderConfig config = {});

  const DecoderConfig& config() const { return config_; }

  /// Decode from samples of u = sin(azimuth-from-normal) and the
  /// corresponding linear-scale RSS/RCS measurements.
  DecodeResult decode(std::span<const double> u,
                      std::span<const double> rss_linear) const;

  /// True when decode() would satisfy its preconditions for this u
  /// series: >= 8 distinct samples spanning a window wide enough that
  /// the RCS spectrum reaches the tag family's coding band. Callers
  /// (e.g. the pipeline) use this to degrade to an explicit no-read on
  /// short or narrow passes instead of throwing.
  bool can_decode(std::span<const double> u) const;

  /// Spacing [wavelengths] of coding slot `k` (1-based).
  double slot_spacing_lambda(int k) const;

 private:
  DecoderConfig config_;
  TagLayout reference_layout_;  ///< all-ones layout of the tag family
};

}  // namespace ros::tag
