// Spatial-coding encoder/decoder (paper Sec. 5.2 and Sec. 6).
//
// Encoding is layout construction (TagLayout::from_bits). Decoding takes
// (u, RSS) samples gathered while driving past the tag, computes the RCS
// frequency spectrum, reads the amplitude at each coding slot, normalizes
// by the overall power in the coding band, and thresholds to bits.
#pragma once

#include <span>
#include <vector>

#include "ros/dsp/spectrum.hpp"
#include "ros/tag/layout.hpp"

namespace ros::tag {

struct DecoderConfig {
  /// Expected number of coding slots (must match the tag family).
  int n_bits = 4;
  /// Expected unit spacing delta_c in wavelengths.
  double unit_spacing_lambda = 1.5;
  double design_hz = 79e9;
  /// Peak search window around each slot, in wavelengths.
  double slot_tolerance_lambda = 0.4;
  /// Bit decision threshold: slot amplitude relative to the coding-band
  /// RMS amplitude. With envelope whitening, "1" peaks normalize to
  /// >= ~0.96 and "0" slots to <= ~0.65 across all bit patterns and
  /// realistic geometries; 0.8 splits them centrally.
  double threshold = 0.8;
  /// Absolute modulation-depth floor on the whitened-RCS spectrum: a
  /// present stack modulates the tag's RCS by >= 2/M relative to its
  /// mean, which appears as a spectral peak of ~1/M; thermal-noise
  /// maxima at usable RSS SNRs stay below ~0.04. A slot must clear BOTH
  /// thresholds, which keeps an all-zero (reference-only) tag or a noise
  /// floor from decoding as spurious ones.
  double min_modulation = 0.04;
  ros::dsp::SpectrumOptions spectrum{};
};

struct DecodeResult {
  std::vector<bool> bits;
  /// Per-slot amplitude normalized by coding-band RMS (the OOK decision
  /// variable; feed these to ros::dsp::ook_snr across repeated reads).
  std::vector<double> slot_amplitudes;
  /// Per-slot absolute spectral amplitude (modulation depth).
  std::vector<double> slot_modulation;
  double band_rms = 0.0;
  double threshold = 0.0;
  ros::dsp::RcsSpectrum spectrum;
};

class SpatialDecoder {
 public:
  explicit SpatialDecoder(DecoderConfig config = {});

  const DecoderConfig& config() const { return config_; }

  /// Decode from samples of u = sin(azimuth-from-normal) and the
  /// corresponding linear-scale RSS/RCS measurements.
  DecodeResult decode(std::span<const double> u,
                      std::span<const double> rss_linear) const;

  /// True when decode() would satisfy its preconditions for this u
  /// series: >= 8 distinct samples spanning a window wide enough that
  /// the RCS spectrum reaches the tag family's coding band. Callers
  /// (e.g. the pipeline) use this to degrade to an explicit no-read on
  /// short or narrow passes instead of throwing.
  bool can_decode(std::span<const double> u) const;

  /// Spacing [wavelengths] of coding slot `k` (1-based).
  double slot_spacing_lambda(int k) const;

 private:
  DecoderConfig config_;
  TagLayout reference_layout_;  ///< all-ones layout of the tag family
};

}  // namespace ros::tag
