// The physical RoS tag: a horizontal layout of vertical PSVAA stacks.
//
// This is the full electromagnetic model that the radar simulator
// interrogates: each present stack is a PsvaaStack (with its own
// fabrication-seeded tolerances), placed at its layout position along the
// tag plane. All responses use exact per-stack ranges, so both the
// vertical near field (tall stacks, Fig. 15b) and the horizontal near
// field (wide layouts, Eq. 8) emerge from geometry.
#pragma once

#include <memory>
#include <vector>

#include "ros/antenna/beam_shaping.hpp"
#include "ros/antenna/stack.hpp"
#include "ros/em/material.hpp"
#include "ros/tag/layout.hpp"

namespace ros::tag {

using ros::common::cplx;

class RosTag {
 public:
  struct Params {
    LayoutParams layout{};
    /// PSVAAs per stack (8 / 16 / 32 in the paper's evaluation).
    int psvaas_per_stack = 32;
    /// Optional per-coding-slot PSVAA counts (size n_bits; entries for
    /// absent slots ignored). Enables the Sec. 8 ASK extension where
    /// stack height encodes an amplitude level; the reference stack
    /// keeps `psvaas_per_stack`.
    std::vector<int> psvaas_per_slot{};
    /// Per-PSVAA elevation phase weights (beam shaping); empty = uniform.
    /// Applied scaled to each stack's own unit count.
    std::vector<double> phase_weights_rad{};
    /// Near-field-focusing (NFFA, Sec. 8): pre-compensate each stack's
    /// TL phase for the spherical wavefront at this focal distance, so a
    /// wide (many-bit) tag decodes *inside* its conventional far field.
    /// 0 disables (plane-wave design). Realized in hardware as per-stack
    /// TL length offsets, exactly like the beam-shaping weights.
    double focal_distance_m = 0.0;
    /// Stack unit parameters (PSVAA geometry; switching on by default).
    ros::antenna::Psvaa::Params unit{};
  };

  /// Build a tag encoding `bits`. The `stackup` must outlive the tag.
  RosTag(const std::vector<bool>& bits, Params params,
         const ros::em::StriplineStackup* stackup);

  const TagLayout& layout() const { return layout_; }
  const Params& params() const { return params_; }

  /// Positions [m] of the present stacks along the tag plane.
  const std::vector<double>& stack_positions() const {
    return layout_.stack_positions();
  }

  /// Full polarization scattering matrix toward a monostatic radar at
  /// azimuth `az_rad` from the tag normal, ground distance `distance_m`
  /// from the tag center, and radar-vs-tag-center height offset
  /// `height_offset_m`, at frequency `hz`.
  ros::em::ScatterMatrix scatter(double az_rad, double distance_m,
                                 double height_offset_m, double hz) const;

  /// Retro-mode (cross-polarized) scattering length at that geometry.
  cplx retro_scattering_length(double az_rad, double distance_m,
                               double height_offset_m, double hz) const;

  /// Retro-mode RCS [dBsm].
  double rcs_dbsm(double az_rad, double distance_m, double height_offset_m,
                  double hz) const;

  /// The stack serving position index `i` in stack_positions().
  const ros::antenna::PsvaaStack& stack(int i) const;

  /// Stack height [m] (all stacks share the design).
  double stack_height() const;

  /// Conservative far-field distance: max of the layout's horizontal far
  /// field (Eq. 8) and the stack's vertical far field.
  double far_field_distance() const;

 private:
  TagLayout layout_;
  Params params_;
  std::vector<ros::antenna::PsvaaStack> stacks_;  ///< one per position
};

/// Convenience: a tag with the paper's default 4-bit, delta_c = 1.5
/// lambda, 32-PSVAA beam-shaped configuration. Uses the published Fig. 8a
/// weights tiled symmetrically when `beam_shaped` is true.
RosTag make_default_tag(const std::vector<bool>& bits,
                        const ros::em::StriplineStackup* stackup,
                        int psvaas_per_stack = 32, bool beam_shaped = true);

/// Quadratic-phase beam-spreading weights: phi_n = spread * pi * x_n^2
/// with x_n in [-1, 1] across the stack, wrapped into [0, 2*pi). A
/// quadratic phase front defocuses the stack's pencil beam into an
/// approximately flat top ~2*spread times wider -- the closed-form
/// sibling of the paper's DE-GA search (which remains available in
/// ros::antenna::shape_elevation_beam).
std::vector<double> quadratic_beam_weights(int n_units, double spread);

/// Beam weights that spread an `n_units` stack (0.725-lambda pitch) to
/// roughly `target_beamwidth_rad` (default 10 deg, the paper's goal).
std::vector<double> default_beam_weights(
    int n_units, double target_beamwidth_rad = 0.1745);

}  // namespace ros::tag
