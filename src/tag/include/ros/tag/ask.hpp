// Multi-level amplitude-shift-keying extension (paper Sec. 8):
//
//   "The RCS levels of each encoding bit '1' can be adjusted by varying
//    the number of PSVAAs within a stack. Multiple RCS levels can enable
//    ASK modulation which can improve the encoding capacity by
//    multi-folds."
//
// Each coding slot carries one of L amplitude levels: level 0 = absent
// stack, higher levels = taller stacks. With the default 4 levels the
// 4-slot tag carries 8 bits instead of 4. The decoder reads the slot
// amplitudes from the RCS spectrum, normalizes by the strongest slot
// (which must carry the top level -- the pilot convention), and
// quantizes.
#pragma once

#include <span>
#include <vector>

#include "ros/em/material.hpp"
#include "ros/tag/codec.hpp"
#include "ros/tag/tag.hpp"

namespace ros::tag {

struct AskConfig {
  int n_slots = 4;
  /// PSVAAs per stack for each level; level 0 must be 0 (absent).
  std::vector<int> level_psvaas = {0, 8, 16, 32};
  /// Reference stack size (also the pilot's full-scale).
  int reference_psvaas = 32;
  /// Quantization thresholds on the slot amplitude relative to the
  /// strongest slot; size levels-1, increasing. With unshaped stacks the
  /// amplitude ladder is the clean 0 / 0.25 / 0.5 / 1.0 (amplitude
  /// proportional to stack height).
  std::vector<double> level_thresholds = {0.15, 0.375, 0.72};
  /// The ASK prototype uses *unshaped* stacks so the amplitude scales
  /// linearly with the PSVAA count; beam-shaping every stack to a common
  /// width would compress the ladder to sqrt(N). The cost is the pencil
  /// elevation beam of Sec. 4.3 -- the paper's NFFA suggestion (Sec. 8)
  /// is the hardware answer; here ASK assumes elevation alignment.
  bool beam_shaped = false;
  LayoutParams layout_params() const;
  DecoderConfig decoder_config() const;
};

class AskCodec {
 public:
  explicit AskCodec(AskConfig config = {});

  const AskConfig& config() const { return config_; }

  int levels() const { return static_cast<int>(config_.level_psvaas.size()); }

  /// Bits conveyed per interrogation: n_slots * log2(levels).
  double capacity_bits() const;

  /// Build the physical tag for a symbol vector (one level per slot, in
  /// [0, levels)). At least one slot must carry the top level (the
  /// pilot) so the decoder has a full-scale reference.
  RosTag make_tag(const std::vector<int>& symbols,
                  const ros::em::StriplineStackup* stackup) const;

  struct AskDecodeResult {
    std::vector<int> symbols;
    std::vector<double> level_ratios;  ///< calibrated amplitude / pilot
    DecodeResult base;                 ///< underlying OOK decode
  };

  /// Per-slot spectral gain (from the constructor's analytic pilot
  /// calibration): the decoder's envelope-whitening and windowing have a
  /// ~10 % frequency-dependent response across the coding band, which a
  /// real ASK receiver would calibrate out on a known tag exactly like
  /// this.
  const std::vector<double>& slot_gains() const { return slot_gains_; }

  /// Decode symbols from (u, linear RSS) samples.
  AskDecodeResult decode(std::span<const double> u,
                         std::span<const double> rss_linear) const;

 private:
  AskConfig config_;
  std::vector<double> slot_gains_;
};

}  // namespace ros::tag
