// The beam-pattern encoding strawman (paper Sec. 5, first paragraph).
//
// A "straightforward" alternative to spatial coding: point beams at
// prescribed azimuths by phasing an array of PSVAA stacks. The paper
// rejects it because a PSVAA is 3 lambda wide -- 12x the lambda/4
// spacing a *retroreflective* array needs for unambiguous steering (the
// round trip doubles every aperture phase) -- so each intended beam
// drags along >= 11 grating-lobe copies, collapsing the encoding angular
// range and the per-beam power. This module implements the strawman so
// the failure is measurable.
#pragma once

#include <span>
#include <vector>

namespace ros::tag {

class BeamPatternStrawman {
 public:
  struct Params {
    int n_stacks = 8;
    /// Element (stack) spacing in wavelengths; a PSVAA is ~3 lambda wide.
    double spacing_lambda = 3.0;
    double design_hz = 79e9;
  };

  BeamPatternStrawman();  // default Params
  explicit BeamPatternStrawman(Params p);

  const Params& params() const { return params_; }

  /// Round-trip array power pattern (normalized to its own peak) when
  /// the stack phases steer a retro beam to u_target = sin(target az),
  /// evaluated at each u in `u_grid`.
  std::vector<double> pattern(double u_target,
                              std::span<const double> u_grid) const;

  /// Number of beams within `tolerance_db` of the maximum over the full
  /// u in [-1, 1] range -- the ambiguity count (paper: >= 11 extra
  /// beams for 3-lambda spacing; exactly 1 beam at lambda/4).
  int ambiguous_beams(double u_target, double tolerance_db = 3.0) const;

  /// Grating-lobe period in u for a retro array: lambda / (2 * spacing).
  double grating_period_u() const;

 private:
  Params params_;
};

}  // namespace ros::tag
