#include "ros/tag/beam_pattern_strawman.hpp"

#include <cmath>
#include <complex>

#include "ros/common/expect.hpp"
#include "ros/common/grid.hpp"
#include "ros/common/units.hpp"
#include "ros/dsp/peaks.hpp"

namespace ros::tag {

using namespace ros::common;

BeamPatternStrawman::BeamPatternStrawman()
    : BeamPatternStrawman(Params{}) {}

BeamPatternStrawman::BeamPatternStrawman(Params p) : params_(p) {
  ROS_EXPECT(p.n_stacks >= 2, "need at least two stacks");
  ROS_EXPECT(p.spacing_lambda > 0.0, "spacing must be positive");
  ROS_EXPECT(p.design_hz > 0.0, "design frequency must be positive");
}

double BeamPatternStrawman::grating_period_u() const {
  return 1.0 / (2.0 * params_.spacing_lambda);
}

std::vector<double> BeamPatternStrawman::pattern(
    double u_target, std::span<const double> u_grid) const {
  // Retro round trip: element at x contributes phase 2 * beta * x * u.
  const int n = params_.n_stacks;
  const double center = 0.5 * static_cast<double>(n - 1);
  std::vector<double> out(u_grid.size());
  for (std::size_t i = 0; i < u_grid.size(); ++i) {
    std::complex<double> sum{0.0, 0.0};
    for (int k = 0; k < n; ++k) {
      const double x_lambda =
          (static_cast<double>(k) - center) * params_.spacing_lambda;
      const double phase =
          4.0 * kPi * x_lambda * (u_grid[i] - u_target);
      sum += std::polar(1.0, phase);
    }
    out[i] = std::norm(sum) / static_cast<double>(n * n);
  }
  return out;
}

int BeamPatternStrawman::ambiguous_beams(double u_target,
                                         double tolerance_db) const {
  const auto grid = linspace(-1.0, 1.0, 4001);
  const auto p = pattern(u_target, grid);
  double peak = 0.0;
  for (double v : p) peak = std::max(peak, v);
  ros::dsp::PeakOptions opts;
  opts.min_value = peak * db_to_linear(-tolerance_db);
  opts.min_separation = 8;
  return static_cast<int>(ros::dsp::find_peaks(p, opts).size());
}

}  // namespace ros::tag
