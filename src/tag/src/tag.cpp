#include "ros/tag/tag.hpp"

#include <cmath>

#include "ros/common/angles.hpp"
#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::tag {

using namespace ros::common;
using ros::antenna::PsvaaStack;
using ros::em::ScatterMatrix;

RosTag::RosTag(const std::vector<bool>& bits, Params params,
               const ros::em::StriplineStackup* stackup)
    : layout_(TagLayout::from_bits(bits, params.layout)),
      params_(std::move(params)) {
  ROS_EXPECT(stackup != nullptr, "stackup must not be null");
  ROS_EXPECT(params_.psvaas_per_stack >= 1, "need at least one PSVAA");
  ROS_EXPECT(params_.psvaas_per_slot.empty() ||
                 params_.psvaas_per_slot.size() ==
                     static_cast<std::size_t>(layout_.n_bits()),
             "per-slot PSVAA counts must match n_bits");
  const auto& positions = layout_.stack_positions();
  stacks_.reserve(positions.size());
  // Map present stacks back to their slots (position 0 = reference).
  std::vector<int> slot_of_position = {0};
  for (int k = 1; k <= layout_.n_bits(); ++k) {
    if (bits[static_cast<std::size_t>(k - 1)]) slot_of_position.push_back(k);
  }
  for (std::size_t i = 0; i < positions.size(); ++i) {
    PsvaaStack::Params sp;
    const int slot = slot_of_position[i];
    sp.n_units = (slot > 0 && !params_.psvaas_per_slot.empty())
                     ? params_.psvaas_per_slot[static_cast<std::size_t>(
                           slot - 1)]
                     : params_.psvaas_per_stack;
    ROS_EXPECT(sp.n_units >= 1, "each present stack needs >= 1 PSVAA");
    if (params_.phase_weights_rad.empty()) {
      // uniform
    } else if (sp.n_units == params_.psvaas_per_stack) {
      sp.phase_weights_rad = params_.phase_weights_rad;
    } else {
      // Re-derive weights for this stack's own size so every stack gets
      // the same target beamwidth.
      sp.phase_weights_rad = default_beam_weights(sp.n_units);
    }
    sp.unit = params_.unit;
    // Distinct fabrication tolerances per stack.
    sp.unit.vaa.fabrication_seed =
        params_.unit.vaa.fabrication_seed + 101 * (i + 1);
    stacks_.emplace_back(sp, stackup);
  }
}

const PsvaaStack& RosTag::stack(int i) const {
  ROS_EXPECT(i >= 0 && i < layout_.n_stacks(), "stack index out of range");
  return stacks_[static_cast<std::size_t>(i)];
}

double RosTag::stack_height() const { return stacks_.front().height(); }

double RosTag::far_field_distance() const {
  return std::max(layout_.far_field_distance(),
                  stacks_.front().far_field_distance(
                      layout_.params().design_hz));
}

ScatterMatrix RosTag::scatter(double az_rad, double distance_m,
                              double height_offset_m, double hz) const {
  ROS_EXPECT(distance_m > 0.0, "distance must be positive");
  const double beta = 2.0 * kPi / wavelength(hz);
  // Radar position in the tag frame: tag plane along x, normal along y.
  const double rx = distance_m * std::sin(az_rad);
  const double ry = distance_m * std::cos(az_rad);

  ScatterMatrix total;
  const auto& positions = layout_.stack_positions();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double dx = rx - positions[i];
    const double r_i = std::hypot(dx, ry);
    // Azimuth of the radar as seen from this stack.
    const double az_i = std::atan2(dx, ry);
    const ScatterMatrix s =
        stacks_[i].scatter(az_i, r_i, height_offset_m, hz);
    // Round-trip phase relative to the tag center plane, plus the NFFA
    // pre-compensation: extra TL length per stack cancels the spherical
    // wavefront curvature at the focal distance (Sec. 8).
    double phase = -2.0 * beta * (r_i - distance_m);
    if (params_.focal_distance_m > 0.0) {
      const double f = params_.focal_distance_m;
      phase += 2.0 * beta * (std::hypot(f, positions[i]) - f);
    }
    total = total + s.scaled(std::polar(1.0, phase));
  }
  return total;
}

cplx RosTag::retro_scattering_length(double az_rad, double distance_m,
                                     double height_offset_m,
                                     double hz) const {
  // For a switching tag the retro mode lives in the cross-pol channel.
  const ScatterMatrix s = scatter(az_rad, distance_m, height_offset_m, hz);
  return params_.unit.switching ? s.hv : s.hh;
}

double RosTag::rcs_dbsm(double az_rad, double distance_m,
                        double height_offset_m, double hz) const {
  return ros::antenna::rcs_dbsm_from_scattering_length(
      retro_scattering_length(az_rad, distance_m, height_offset_m, hz));
}

std::vector<double> quadratic_beam_weights(int n_units, double spread) {
  ROS_EXPECT(n_units >= 1, "need at least one unit");
  ROS_EXPECT(spread >= 0.0, "spread must be non-negative");
  std::vector<double> w(static_cast<std::size_t>(n_units), 0.0);
  if (n_units == 1) return w;
  const double center = 0.5 * static_cast<double>(n_units - 1);
  for (int i = 0; i < n_units; ++i) {
    const double x = (static_cast<double>(i) - center) / center;
    const double phi = spread * kPi * x * x;
    w[static_cast<std::size_t>(i)] = std::fmod(phi, 2.0 * kPi);
  }
  return w;
}

std::vector<double> default_beam_weights(int n_units,
                                         double target_beamwidth_rad) {
  // Natural beamwidth of a 0.725-lambda-pitch retro stack (Eq. 5):
  // 0.886 / (2 * 0.725 * N) rad. A quadratic front of total edge phase
  // spread*pi widens the beam by ~2*spread.
  const double natural = 0.886 / (2.0 * 0.725 * static_cast<double>(n_units));
  const double ratio = target_beamwidth_rad / natural;
  const double spread = std::max(0.0, ratio / 2.0);
  return quadratic_beam_weights(n_units, spread);
}

RosTag make_default_tag(const std::vector<bool>& bits,
                        const ros::em::StriplineStackup* stackup,
                        int psvaas_per_stack, bool beam_shaped) {
  RosTag::Params p;
  p.psvaas_per_stack = psvaas_per_stack;
  if (beam_shaped) {
    p.phase_weights_rad = default_beam_weights(psvaas_per_stack);
  }
  return RosTag(bits, p, stackup);
}

}  // namespace ros::tag
