#include "ros/tag/link_budget.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"
#include "ros/em/pathloss.hpp"

namespace ros::tag {

using namespace ros::common;

RadarLinkBudget RadarLinkBudget::ti_iwr1443() { return {}; }

RadarLinkBudget RadarLinkBudget::commercial_automotive() {
  RadarLinkBudget b;
  b.eirp_dbm = 50.0;
  b.noise_figure_db = 9.0;
  return b;
}

double RadarLinkBudget::noise_floor_dbm() const {
  return kThermalNoiseDbmPerHz + noise_figure_db +
         10.0 * std::log10(if_bandwidth_hz) + rx_antenna_gain_db +
         rx_processing_gain_db;
}

double RadarLinkBudget::rx_gain_total_db() const {
  return rx_antenna_gain_db + rx_chain_gain_db + rx_processing_gain_db;
}

double RadarLinkBudget::received_power_dbm(double sigma_dbsm,
                                           double distance_m,
                                           double extra_loss_db) const {
  return ros::em::received_power_dbm(eirp_dbm, 0.0, rx_gain_total_db(),
                                     wavelength(frequency_hz), sigma_dbsm,
                                     distance_m, extra_loss_db);
}

double RadarLinkBudget::snr_db(double sigma_dbsm, double distance_m,
                               double extra_loss_db) const {
  // Mirrors the paper's criterion P_r > L_0 (Sec. 5.3): received power
  // with the full 55 dB receive gain against the L_0 floor.
  return received_power_dbm(sigma_dbsm, distance_m, extra_loss_db) -
         noise_floor_dbm();
}

double RadarLinkBudget::max_range_m(double sigma_dbsm,
                                    double margin_db) const {
  return ros::em::max_detection_range(
      eirp_dbm, 0.0, rx_gain_total_db(), wavelength(frequency_hz),
      sigma_dbsm, noise_floor_dbm(), margin_db);
}

}  // namespace ros::tag
