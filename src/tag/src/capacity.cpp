#include "ros/tag/capacity.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::tag {

using ros::common::wavelength;

double CapacityModel::span_lambda() const {
  ROS_EXPECT(n_bits >= 1, "need at least one bit");
  const int m = n_bits + 1;
  return (4.0 * m - 7.0) * unit_spacing_lambda;
}

double CapacityModel::tag_width_m() const {
  return (span_lambda() + 3.0) * wavelength(design_hz);
}

double CapacityModel::far_field_distance_m() const {
  const double d = span_lambda() * wavelength(design_hz);
  return 2.0 * d * d / wavelength(design_hz);
}

double CapacityModel::max_coding_spacing_lambda() const {
  const int m = n_bits + 1;
  return static_cast<double>(2 * m - 3) * unit_spacing_lambda;
}

double CapacityModel::max_vehicle_speed_mps(double frame_rate_hz,
                                            double nyquist_margin) const {
  ROS_EXPECT(frame_rate_hz > 0.0, "frame rate must be positive");
  ROS_EXPECT(nyquist_margin >= 1.0, "margin must be >= 1");
  // Highest pairwise tone: f_u = 2 * span / lambda cycles per unit u.
  const double f_u = 2.0 * span_lambda();
  // Nyquist: delta_u <= 1 / (2 * margin * f_u). Near the closest approach
  // du/ds <= 1/d; use the far-field distance as the worst-case d.
  const double du_max = 1.0 / (2.0 * nyquist_margin * f_u);
  const double ds_max = du_max * far_field_distance_m();
  return ds_max * frame_rate_hz;
}

double CapacityModel::min_tag_separation_m(int n_rx,
                                           double distance_m) const {
  ROS_EXPECT(n_rx >= 1, "need at least one Rx antenna");
  ROS_EXPECT(distance_m > 0.0, "distance must be positive");
  const double half_beam_rad = 1.0 / static_cast<double>(n_rx);
  return distance_m * std::tan(half_beam_rad);
}

}  // namespace ros::tag
