#include "ros/tag/rcs_model.hpp"

#include <algorithm>
#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::tag {

using ros::common::kPi;

cplx multi_stack_field_factor(std::span<const double> positions_m, double u,
                              double lambda_m) {
  ROS_EXPECT(lambda_m > 0.0, "wavelength must be positive");
  cplx sum{0.0, 0.0};
  for (double d : positions_m) {
    sum += std::polar(1.0, 4.0 * kPi * d * u / lambda_m);
  }
  return sum;
}

double multi_stack_rcs_factor(const TagLayout& layout, double u) {
  const cplx f = multi_stack_field_factor(layout.stack_positions(), u,
                                          layout.wavelength());
  return std::norm(f);
}

std::vector<PredictedPeak> predicted_peaks(const TagLayout& layout) {
  std::vector<PredictedPeak> peaks;
  const auto& pos = layout.stack_positions();
  const double lambda = layout.wavelength();

  // Reference is pos[0]; map every present coding stack back to its slot.
  for (int k = 1; k <= layout.n_bits(); ++k) {
    if (!layout.bits()[static_cast<std::size_t>(k - 1)]) continue;
    peaks.push_back({layout.slot_spacing_lambda(k), true, k});
  }
  // Secondary peaks: all pairs excluding the reference.
  for (std::size_t i = 1; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      peaks.push_back({std::abs(pos[i] - pos[j]) / lambda, false, 0});
    }
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const PredictedPeak& a, const PredictedPeak& b) {
              return a.spacing_lambda < b.spacing_lambda;
            });
  return peaks;
}

bool coding_band_clean(const TagLayout& layout, double guard_lambda) {
  const auto peaks = predicted_peaks(layout);
  for (const auto& secondary : peaks) {
    if (secondary.is_coding) continue;
    for (int k = 1; k <= layout.n_bits(); ++k) {
      if (std::abs(secondary.spacing_lambda -
                   layout.slot_spacing_lambda(k)) < guard_lambda) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace ros::tag
