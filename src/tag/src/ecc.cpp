#include "ros/tag/ecc.hpp"

#include "ros/common/expect.hpp"

namespace ros::tag {

namespace {
// Positions (1-based) within the codeword: parity at 1, 2, 4.
constexpr int kDataPos[4] = {3, 5, 6, 7};
constexpr int kParityPos[3] = {1, 2, 4};
}  // namespace

std::vector<bool> hamming74_encode(const std::vector<bool>& data) {
  ROS_EXPECT(data.size() == 4, "Hamming(7,4) encodes exactly 4 bits");
  std::vector<bool> code(7, false);
  for (int i = 0; i < 4; ++i) {
    code[static_cast<std::size_t>(kDataPos[i] - 1)] =
        data[static_cast<std::size_t>(i)];
  }
  for (int p = 0; p < 3; ++p) {
    const int mask = kParityPos[p];
    bool parity = false;
    for (int pos = 1; pos <= 7; ++pos) {
      if (pos == mask) continue;
      if ((pos & mask) != 0) {
        parity = parity ^ code[static_cast<std::size_t>(pos - 1)];
      }
    }
    code[static_cast<std::size_t>(mask - 1)] = parity;
  }
  return code;
}

EccDecodeResult hamming74_decode(const std::vector<bool>& code) {
  ROS_EXPECT(code.size() == 7, "Hamming(7,4) decodes exactly 7 bits");
  std::vector<bool> fixed = code;
  int syndrome = 0;
  for (int p = 0; p < 3; ++p) {
    const int mask = kParityPos[p];
    bool parity = false;
    for (int pos = 1; pos <= 7; ++pos) {
      if ((pos & mask) != 0) {
        parity = parity ^ fixed[static_cast<std::size_t>(pos - 1)];
      }
    }
    if (parity) syndrome |= mask;
  }
  EccDecodeResult out;
  if (syndrome != 0) {
    fixed[static_cast<std::size_t>(syndrome - 1)] =
        !fixed[static_cast<std::size_t>(syndrome - 1)];
    out.corrected = true;
    out.error_position = syndrome - 1;
  }
  out.data.resize(4);
  for (int i = 0; i < 4; ++i) {
    out.data[static_cast<std::size_t>(i)] =
        fixed[static_cast<std::size_t>(kDataPos[i] - 1)];
  }
  return out;
}

std::vector<bool> hamming74_encode_blocks(const std::vector<bool>& data) {
  std::vector<bool> out;
  for (std::size_t i = 0; i < data.size(); i += 4) {
    std::vector<bool> block(4, false);
    for (std::size_t j = 0; j < 4 && i + j < data.size(); ++j) {
      block[j] = data[i + j];
    }
    const auto code = hamming74_encode(block);
    out.insert(out.end(), code.begin(), code.end());
  }
  return out;
}

EccBlockResult hamming74_decode_blocks(const std::vector<bool>& code) {
  ROS_EXPECT(code.size() % 7 == 0, "codeword stream must be 7-bit blocks");
  EccBlockResult out;
  for (std::size_t i = 0; i < code.size(); i += 7) {
    const std::vector<bool> block(code.begin() + static_cast<long>(i),
                                  code.begin() + static_cast<long>(i + 7));
    const auto d = hamming74_decode(block);
    out.data.insert(out.data.end(), d.data.begin(), d.data.end());
    out.corrected_blocks += d.corrected ? 1 : 0;
  }
  return out;
}

}  // namespace ros::tag
