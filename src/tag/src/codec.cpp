#include "ros/tag/codec.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "ros/common/expect.hpp"
#include "ros/dsp/fft.hpp"
#include "ros/obs/log.hpp"

namespace ros::tag {

using ros::dsp::RcsSpectrum;

const char* to_string(DecoderBackend backend) {
  switch (backend) {
    case DecoderBackend::auto_: return "auto";
    case DecoderBackend::fft: return "fft";
    case DecoderBackend::codebook: return "codebook";
    case DecoderBackend::cross_check: return "cross_check";
  }
  return "unknown";
}

bool parse_decoder_backend(std::string_view name, DecoderBackend& out) {
  if (name == "auto") out = DecoderBackend::auto_;
  else if (name == "fft") out = DecoderBackend::fft;
  else if (name == "codebook") out = DecoderBackend::codebook;
  else if (name == "cross_check") out = DecoderBackend::cross_check;
  else return false;
  return true;
}

DecoderBackend resolve_decoder_backend(DecoderBackend configured) {
  if (configured != DecoderBackend::auto_) return configured;
  const char* env = std::getenv("ROS_DECODER");
  if (env == nullptr || *env == '\0') return DecoderBackend::fft;
  DecoderBackend parsed = DecoderBackend::fft;
  if (!parse_decoder_backend(env, parsed)) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      ROS_LOG_WARN("tag.codec", "unrecognized ROS_DECODER value; using fft",
                   ros::obs::kv("value", env));
    }
    return DecoderBackend::fft;
  }
  // ROS_DECODER=auto means "no override".
  return parsed == DecoderBackend::auto_ ? DecoderBackend::fft : parsed;
}

SpatialDecoder::SpatialDecoder(DecoderConfig config)
    : config_(config),
      reference_layout_(TagLayout::all_ones(LayoutParams{
          config.n_bits, config.unit_spacing_lambda, config.design_hz,
          0.0})) {
  ROS_EXPECT(config.n_bits >= 1, "need at least one bit");
  ROS_EXPECT(config.threshold > 0.0, "threshold must be positive");
  ROS_EXPECT(config.slot_tolerance_lambda > 0.0,
             "slot tolerance must be positive");
}

double SpatialDecoder::slot_spacing_lambda(int k) const {
  return reference_layout_.slot_spacing_lambda(k);
}

bool SpatialDecoder::can_decode(std::span<const double> u) const {
  if (u.size() < 8) return false;
  std::vector<double> us(u.begin(), u.end());
  std::sort(us.begin(), us.end());
  us.erase(std::unique(us.begin(), us.end()), us.end());
  if (us.size() < 8) return false;
  const double span = us.back() - us.front();
  if (!(span > 0.0) || !std::isfinite(span)) return false;
  // Mirror rcs_spectrum's grid: n resampled points over `span` give a
  // top analysis spacing of 0.5 * (nfft/2 - 1) / (nfft * du). The
  // coding band is reachable only when that tops band_lo.
  const std::size_t n = config_.spectrum.resample_points > 0
                            ? config_.spectrum.resample_points
                            : 256;
  const std::size_t nfft = ros::dsp::next_pow2(
      n * std::max<std::size_t>(1, config_.spectrum.zero_pad_factor));
  const double du = span / static_cast<double>(n - 1);
  const double max_spacing =
      0.5 * static_cast<double>(nfft / 2 - 1) /
      (static_cast<double>(nfft) * du);
  const double band_lo = reference_layout_.coding_band_lambda().first -
                         config_.slot_tolerance_lambda;
  return max_spacing >= band_lo;
}

namespace {

/// Max spectrum amplitude within +/- tol of `center` (in lambdas).
double window_max(const RcsSpectrum& spec, double center, double tol) {
  double best = 0.0;
  for (std::size_t i = 0; i < spec.spacing_lambda.size(); ++i) {
    if (std::abs(spec.spacing_lambda[i] - center) <= tol) {
      best = std::max(best, spec.amplitude[i]);
    }
  }
  return best;
}

}  // namespace

DecodeResult SpatialDecoder::decode(std::span<const double> u,
                                    std::span<const double> rss_linear) const {
  DecodeResult out;
  out.spectrum = ros::dsp::rcs_spectrum(u, rss_linear, config_.spectrum);

  const auto band = reference_layout_.coding_band_lambda();
  const double band_lo = band.first - config_.slot_tolerance_lambda;
  const double band_hi = band.second + config_.slot_tolerance_lambda;

  // Coding-band RMS amplitude (the paper normalizes peaks by the overall
  // power within the coding band).
  double sum_sq = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < out.spectrum.spacing_lambda.size(); ++i) {
    const double s = out.spectrum.spacing_lambda[i];
    if (s >= band_lo && s <= band_hi) {
      sum_sq += out.spectrum.amplitude[i] * out.spectrum.amplitude[i];
      ++count;
    }
  }
  ROS_EXPECT(count > 0,
             "spectrum does not cover the coding band; widen the u window");
  out.band_rms = std::sqrt(sum_sq / static_cast<double>(count));
  out.threshold = config_.threshold;

  const double floor = out.band_rms > 0.0 ? out.band_rms : 1e-300;
  out.bits.resize(static_cast<std::size_t>(config_.n_bits));
  out.slot_amplitudes.resize(static_cast<std::size_t>(config_.n_bits));
  out.slot_modulation.resize(static_cast<std::size_t>(config_.n_bits));
  for (int k = 1; k <= config_.n_bits; ++k) {
    const double amp = window_max(out.spectrum, slot_spacing_lambda(k),
                                  config_.slot_tolerance_lambda);
    const double normalized = amp / floor;
    out.slot_amplitudes[static_cast<std::size_t>(k - 1)] = normalized;
    out.slot_modulation[static_cast<std::size_t>(k - 1)] = amp;
    out.bits[static_cast<std::size_t>(k - 1)] =
        normalized > config_.threshold && amp > config_.min_modulation;
  }
  return out;
}

}  // namespace ros::tag
