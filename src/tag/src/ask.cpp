#include "ros/tag/ask.hpp"

#include <algorithm>
#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/grid.hpp"
#include "ros/common/units.hpp"
#include "ros/tag/rcs_model.hpp"

namespace ros::tag {

LayoutParams AskConfig::layout_params() const {
  LayoutParams p;
  p.n_bits = n_slots;
  return p;
}

DecoderConfig AskConfig::decoder_config() const {
  DecoderConfig d;
  d.n_bits = n_slots;
  return d;
}

AskCodec::AskCodec(AskConfig config) : config_(std::move(config)) {
  ROS_EXPECT(config_.n_slots >= 1, "need at least one slot");
  ROS_EXPECT(config_.level_psvaas.size() >= 2, "need at least two levels");
  ROS_EXPECT(config_.level_psvaas.front() == 0, "level 0 must be absent");
  for (std::size_t i = 1; i < config_.level_psvaas.size(); ++i) {
    ROS_EXPECT(config_.level_psvaas[i] > config_.level_psvaas[i - 1],
               "levels must be strictly increasing");
  }
  ROS_EXPECT(config_.level_thresholds.size() ==
                 config_.level_psvaas.size() - 1,
             "need levels-1 thresholds");

  // Pilot calibration: decode the analytic all-equal-amplitude tag over
  // a canonical viewing window and record each slot's spectral gain.
  const auto layout = TagLayout::all_ones(config_.layout_params());
  const auto us = ros::common::linspace(-0.45, 0.45, 600);
  std::vector<double> rcs(us.size());
  for (std::size_t i = 0; i < us.size(); ++i) {
    rcs[i] = multi_stack_rcs_factor(layout, us[i]);
  }
  const SpatialDecoder base_decoder(config_.decoder_config());
  const auto pilot = base_decoder.decode(us, rcs);
  double peak = 0.0;
  for (double m : pilot.slot_modulation) peak = std::max(peak, m);
  ROS_EXPECT(peak > 0.0, "pilot calibration failed");
  slot_gains_.resize(pilot.slot_modulation.size());
  for (std::size_t k = 0; k < slot_gains_.size(); ++k) {
    slot_gains_[k] = pilot.slot_modulation[k] / peak;
  }
}

double AskCodec::capacity_bits() const {
  return static_cast<double>(config_.n_slots) *
         std::log2(static_cast<double>(levels()));
}

RosTag AskCodec::make_tag(const std::vector<int>& symbols,
                          const ros::em::StriplineStackup* stackup) const {
  ROS_EXPECT(symbols.size() == static_cast<std::size_t>(config_.n_slots),
             "one symbol per slot required");
  bool has_pilot = false;
  std::vector<bool> bits(symbols.size());
  std::vector<int> per_slot(symbols.size(), config_.reference_psvaas);
  for (std::size_t k = 0; k < symbols.size(); ++k) {
    ROS_EXPECT(symbols[k] >= 0 && symbols[k] < levels(),
               "symbol out of range");
    bits[k] = symbols[k] > 0;
    if (symbols[k] > 0) {
      per_slot[k] =
          config_.level_psvaas[static_cast<std::size_t>(symbols[k])];
    }
    has_pilot = has_pilot || symbols[k] == levels() - 1;
  }
  ROS_EXPECT(has_pilot,
             "at least one slot must carry the top level (pilot)");

  RosTag::Params p;
  p.layout = config_.layout_params();
  p.psvaas_per_stack = config_.reference_psvaas;
  p.psvaas_per_slot = per_slot;
  if (config_.beam_shaped) {
    p.phase_weights_rad = default_beam_weights(config_.reference_psvaas);
  }
  return RosTag(bits, p, stackup);
}

AskCodec::AskDecodeResult AskCodec::decode(
    std::span<const double> u, std::span<const double> rss_linear) const {
  const SpatialDecoder base_decoder(config_.decoder_config());
  AskDecodeResult out;
  out.base = base_decoder.decode(u, rss_linear);

  // Calibrate slot gains, then normalize by the strongest slot (the
  // pilot).
  std::vector<double> corrected(out.base.slot_modulation.size());
  double pilot = 0.0;
  for (std::size_t k = 0; k < corrected.size(); ++k) {
    corrected[k] = out.base.slot_modulation[k] / slot_gains_[k];
    pilot = std::max(pilot, corrected[k]);
  }
  out.level_ratios.resize(corrected.size());
  out.symbols.resize(corrected.size());
  for (std::size_t k = 0; k < corrected.size(); ++k) {
    const double ratio = pilot > 0.0 ? corrected[k] / pilot : 0.0;
    out.level_ratios[k] = ratio;
    // Presence is decided on the calibrated ratio (a level-1 stack is
    // deliberately weak, so the OOK bit rule would reject it); the
    // absolute modulation floor still guards against pure noise.
    if (ratio <= config_.level_thresholds.front() ||
        out.base.slot_modulation[k] < 0.5 * config_.decoder_config().min_modulation) {
      out.symbols[k] = 0;
      continue;
    }
    int level = 1;
    for (std::size_t t = 1; t < config_.level_thresholds.size(); ++t) {
      if (ratio > config_.level_thresholds[t]) level = static_cast<int>(t) + 1;
    }
    out.symbols[k] = level;
  }
  return out;
}

}  // namespace ros::tag
