#include "ros/tag/codebook.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <numeric>
#include <unordered_map>

#include "ros/common/expect.hpp"
#include "ros/common/mathx.hpp"
#include "ros/dsp/fft.hpp"
#include "ros/dsp/resample.hpp"
#include "ros/dsp/window.hpp"
#include "ros/exec/arena.hpp"
#include "ros/obs/log.hpp"
#include "ros/obs/metrics.hpp"
#include "ros/simd/simd.hpp"

namespace ros::tag {

namespace {

constexpr char kLog[] = "tag.codebook";
constexpr double kFourPi = 4.0 * 3.14159265358979323846;

/// FNV-1a over raw bit patterns, same scheme as the pipeline's config
/// digest (NaN-safe: doubles mix by representation, not value).
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  void mix(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  void mix(int v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v ? 1 : 0)); }
};

std::size_t resample_points_of(const DecoderConfig& c) {
  return c.spectrum.resample_points > 0 ? c.spectrum.resample_points : 256;
}

/// The family-fixed probe grid: a fan across each slot's tolerance
/// window (center +/- j * probe_offset, j = 1..probes_per_side),
/// inter-slot midpoints, and one guard past each coding-band edge.
/// Off-slot probes carry no codeword energy, anchoring the correlation
/// against flat-spectrum noise. Each slot's fan max-pools into one
/// feature (probe_feature), so a peak shifted anywhere inside the
/// tolerance window — odometry drift scales apparent spacings by up to
/// a few percent, multipath smears peaks — still scores like a
/// centered one, matching the FFT oracle's window-max tolerance.
void make_probes(const DecoderConfig& config, const TagLayout& reference,
                 std::vector<double>& spacing, std::vector<int>& slot,
                 std::vector<int>& feature) {
  const double off = config.codebook.probe_offset_lambda;
  const int fan = std::max(0, config.codebook.probes_per_side);
  ROS_EXPECT(off * fan <= config.slot_tolerance_lambda + 1e-9,
             "codebook probe fan must stay inside the slot tolerance");
  std::vector<std::pair<double, int>> probes;
  for (int k = 1; k <= config.n_bits; ++k) {
    const double s = reference.slot_spacing_lambda(k);
    probes.emplace_back(s, k);
    for (int j = 1; j <= fan && off > 0.0; ++j) {
      probes.emplace_back(s - j * off, k);
      probes.emplace_back(s + j * off, k);
    }
  }
  for (int k = 1; k < config.n_bits; ++k) {
    probes.emplace_back(0.5 * (reference.slot_spacing_lambda(k) +
                               reference.slot_spacing_lambda(k + 1)),
                        0);
  }
  const auto band = reference.coding_band_lambda();
  const double guard = 0.5 * config.unit_spacing_lambda;
  if (band.first - guard > 0.0) probes.emplace_back(band.first - guard, 0);
  probes.emplace_back(band.second + guard, 0);

  std::sort(probes.begin(), probes.end());
  spacing.clear();
  slot.clear();
  feature.clear();
  int next_anchor = config.n_bits;
  for (const auto& [s, k] : probes) {
    if (!spacing.empty() && s - spacing.back() < 1e-9) continue;
    spacing.push_back(s);
    slot.push_back(k);
    feature.push_back(k > 0 ? k - 1 : next_anchor++);
  }
}

/// Collapse per-probe amplitudes into the pooled feature vector: max
/// within each slot's fan, pass-through for off-slot anchors.
void pool_features(std::span<const double> amp,
                   std::span<const int> probe_feature,
                   std::span<double> feat) {
  std::fill(feat.begin(), feat.end(), 0.0);
  for (std::size_t p = 0; p < amp.size(); ++p) {
    auto& f = feat[static_cast<std::size_t>(probe_feature[p])];
    f = std::max(f, amp[p]);
  }
}

/// Project the windowed series y (on a uniform grid u0 + i*du) onto the
/// spacing-d tone: |DTFT at f_u = 2d| normalized like rcs_spectrum's
/// amplitude axis. `phase` and `zeros` are n-long scratch.
double probe_amplitude(std::span<const double> y, double u0, double du,
                       double spacing, double norm, std::span<double> phase,
                       std::span<const double> zeros) {
  const auto& v = ros::simd::ops();
  v.linear_phase(-kFourPi * spacing * u0, -kFourPi * spacing * du,
                 phase.data(), y.size());
  const auto z = v.phase_mac(y.data(), zeros.data(), phase.data(), y.size());
  return std::abs(z) * norm;
}

}  // namespace

std::uint64_t codebook_digest(const DecoderConfig& c) {
  Fnv d;
  d.mix(c.n_bits);
  d.mix(c.unit_spacing_lambda);
  d.mix(c.design_hz);
  d.mix(c.slot_tolerance_lambda);
  d.mix(c.threshold);
  d.mix(c.min_modulation);
  d.mix(static_cast<std::uint64_t>(resample_points_of(c)));
  d.mix(static_cast<std::uint64_t>(c.spectrum.zero_pad_factor));
  d.mix(static_cast<int>(c.spectrum.window));
  d.mix(c.spectrum.remove_mean);
  d.mix(c.spectrum.whiten_envelope);
  d.mix(static_cast<std::uint64_t>(c.spectrum.whiten_window));
  d.mix(c.codebook.canonical_u_span);
  d.mix(c.codebook.probe_offset_lambda);
  d.mix(c.codebook.probes_per_side);
  return d.h;
}

Codebook build_codebook(const DecoderConfig& config) {
  ROS_EXPECT(config.n_bits >= 1 && config.n_bits <= 20,
             "codebook needs 1..20 bits");
  ROS_EXPECT(config.codebook.canonical_u_span > 0.0,
             "canonical u span must be positive");
  const auto t0 = std::chrono::steady_clock::now();

  const LayoutParams family{config.n_bits, config.unit_spacing_lambda,
                            config.design_hz, 0.0};
  const TagLayout reference = TagLayout::all_ones(family);

  Codebook cb;
  cb.key = codebook_digest(config);
  cb.n_codewords = 1u << config.n_bits;
  cb.resample_points = resample_points_of(config);
  cb.canonical_u_span = config.codebook.canonical_u_span;
  make_probes(config, reference, cb.probe_spacing_lambda, cb.probe_slot,
              cb.probe_feature);
  cb.n_probes = static_cast<std::uint32_t>(cb.probe_spacing_lambda.size());
  cb.n_features = static_cast<std::uint32_t>(
      1 + *std::max_element(cb.probe_feature.begin(),
                            cb.probe_feature.end()));

  const std::size_t n = cb.resample_points;
  cb.window = ros::dsp::make_window(config.spectrum.window, n);
  cb.window_gain = ros::dsp::coherent_gain(cb.window);

  const std::size_t C = cb.n_codewords;
  const std::size_t P = cb.n_probes;
  const std::size_t F = cb.n_features;
  cb.tmpl.assign(C * F, 0.0);
  cb.tmpl_centered.assign(C * F, 0.0);
  cb.tmpl_norm.assign(C, 0.0);

  // Canonical synthesis grid: n uniform u points centered on broadside.
  const double span = cb.canonical_u_span;
  const double u0 = -0.5 * span;
  const double du = span / static_cast<double>(n - 1);
  const double norm = 1.0 / (static_cast<double>(n) * cb.window_gain);

  auto& arena = ros::exec::Arena::thread_local_arena();
  ros::exec::Arena::Scope scope(arena);
  auto y = arena.alloc_span<double>(n);
  auto im = arena.alloc_span<double>(n);
  auto env = arena.alloc_span<double>(n);
  auto phase = arena.alloc_span<double>(n);
  auto zeros = arena.alloc_span<double>(n);
  auto amp = arena.alloc_span<double>(P);
  std::fill(zeros.begin(), zeros.end(), 0.0);
  const auto& v = ros::simd::ops();

  std::vector<bool> bits(static_cast<std::size_t>(config.n_bits));
  for (std::uint32_t c = 0; c < C; ++c) {
    for (int k = 0; k < config.n_bits; ++k) bits[static_cast<std::size_t>(k)] = ((c >> k) & 1u) != 0;
    const TagLayout layout = TagLayout::from_bits(bits, family);

    // Forward model, Eq. 6/7: r(u) = n_stacks + 2 sum_pairs cos(4 pi d u).
    std::fill(y.begin(), y.end(), static_cast<double>(layout.n_stacks()));
    std::fill(im.begin(), im.end(), 0.0);
    for (const double d : layout.pairwise_spacings_lambda()) {
      v.linear_phase(kFourPi * d * u0, kFourPi * d * du, phase.data(), n);
      v.cexp_madd(2.0, 0.0, phase.data(), y.data(), im.data(), n);
    }

    // Exactly the rcs_spectrum front end, so templates live in the same
    // whitened, windowed space as the observed probe vector.
    if (config.spectrum.whiten_envelope) {
      ros::dsp::whiten_envelope_inplace(
          y, ros::dsp::whiten_window_size(config.spectrum, n), env);
    }
    if (config.spectrum.remove_mean) {
      const double mu = ros::common::mean(y);
      for (double& s : y) s -= mu;
    }
    for (std::size_t i = 0; i < n; ++i) y[i] *= cb.window[i];

    for (std::size_t p = 0; p < P; ++p) {
      amp[p] = probe_amplitude(y, u0, du, cb.probe_spacing_lambda[p], norm,
                               phase, zeros);
    }
    double* row = cb.tmpl.data() + static_cast<std::size_t>(c) * F;
    pool_features(amp, cb.probe_feature, {row, F});
    double mu = 0.0;
    for (std::size_t f = 0; f < F; ++f) mu += row[f];
    mu /= static_cast<double>(F);
    double* crow = cb.tmpl_centered.data() + static_cast<std::size_t>(c) * F;
    for (std::size_t f = 0; f < F; ++f) crow[f] = row[f] - mu;
    cb.tmpl_norm[c] = std::sqrt(v.dot(crow, crow, F));
  }

  cb.build_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  ROS_LOG_INFO(kLog, "codebook built",
               ros::obs::kv("codewords", C), ros::obs::kv("probes", P),
               ros::obs::kv("build_ms", cb.build_ms));
  return cb;
}

namespace {

/// Process-wide bounded codebook cache, mirroring the FFT plan cache:
/// bounded, cleared wholesale on overflow (a process cycling through
/// more than kMaxCachedCodebooks families is misconfigured, not hot).
constexpr std::size_t kMaxCachedCodebooks = 32;

struct CodebookCache {
  std::mutex mu;
  std::unordered_map<std::uint64_t, std::shared_ptr<const Codebook>> map;
};

CodebookCache& cache() {
  static CodebookCache c;
  return c;
}

}  // namespace

std::shared_ptr<const Codebook> codebook_for(const DecoderConfig& config) {
  const std::uint64_t key = codebook_digest(config);
  auto& reg = ros::obs::MetricsRegistry::global();
  auto& c = cache();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    const auto it = c.map.find(key);
    if (it != c.map.end()) {
      reg.counter("pipeline.decoder.codebook.cache_hits").inc();
      return it->second;
    }
  }
  reg.counter("pipeline.decoder.codebook.cache_misses").inc();
  // Build outside the lock: codebook construction is milliseconds and
  // must not serialize unrelated decoder threads. A racing duplicate
  // build is harmless (last one wins; both are identical).
  auto built = std::make_shared<const Codebook>(build_codebook(config));
  std::lock_guard<std::mutex> lock(c.mu);
  if (c.map.size() >= kMaxCachedCodebooks) c.map.clear();
  c.map[key] = built;
  reg.gauge("pipeline.decoder.codebook.size")
      .set(static_cast<double>(c.map.size()));
  reg.gauge("pipeline.decoder.codebook.build_ms").set(built->build_ms);
  return built;
}

void clear_codebook_cache() {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.map.clear();
  ros::obs::MetricsRegistry::global()
      .gauge("pipeline.decoder.codebook.size")
      .set(0.0);
}

CodebookDecoder::CodebookDecoder(DecoderConfig config)
    : config_(config),
      reference_layout_(TagLayout::all_ones(LayoutParams{
          config.n_bits, config.unit_spacing_lambda, config.design_hz,
          0.0})),
      codebook_(codebook_for(config)) {
  ROS_EXPECT(config.n_bits >= 1, "need at least one bit");
  ROS_EXPECT(config.slot_tolerance_lambda > 0.0,
             "slot tolerance must be positive");
}

bool CodebookDecoder::can_decode(std::span<const double> u) const {
  // Shared aperture gate: fft and codebook backends must agree on read
  // vs no-read, so reuse the oracle's criterion verbatim.
  return SpatialDecoder(config_).can_decode(u);
}

DecodeResult CodebookDecoder::decode(std::span<const double> u,
                                     std::span<const double> rss_linear) const {
  ROS_EXPECT(u.size() == rss_linear.size(), "u/rcs size mismatch");
  ROS_EXPECT(u.size() >= 8, "need at least 8 RCS samples");
  const Codebook& cb = *codebook_;
  const std::size_t n = cb.resample_points;
  const std::size_t P = cb.n_probes;
  const std::size_t F = cb.n_features;
  const std::uint32_t C = cb.n_codewords;
  const auto& v = ros::simd::ops();

  auto& arena = ros::exec::Arena::thread_local_arena();
  ros::exec::Arena::Scope scope(arena);

  // Sort + dedup exactly as rcs_spectrum does, into arena scratch.
  const std::size_t n_in = u.size();
  auto order = arena.alloc_span<std::size_t>(n_in);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return u[a] < u[b]; });
  auto us = arena.alloc_span<double>(n_in);
  auto ys = arena.alloc_span<double>(n_in);
  std::size_t m = 0;
  for (const std::size_t i : order) {
    if (m > 0 && u[i] <= us[m - 1]) continue;  // drop non-increasing
    us[m] = u[i];
    ys[m] = rss_linear[i];
    ++m;
  }
  ROS_EXPECT(m >= 8, "need at least 8 distinct u samples");
  const double span = us[m - 1] - us[0];
  ROS_EXPECT(span > 0.0, "u samples must span a non-zero window");

  // Shared front end: bin-average resample, envelope whiten, window.
  auto uniform = arena.alloc_span<double>(n);
  auto counts = arena.alloc_span<std::size_t>(n);
  ros::dsp::resample_bin_average_into({us.data(), m}, {ys.data(), m},
                                      uniform, counts);
  if (config_.spectrum.whiten_envelope) {
    auto env = arena.alloc_span<double>(n);
    ros::dsp::whiten_envelope_inplace(
        uniform, ros::dsp::whiten_window_size(config_.spectrum, n), env);
  }
  if (config_.spectrum.remove_mean) {
    const double mu = ros::common::mean(uniform);
    for (double& s : uniform) s -= mu;
  }
  for (std::size_t i = 0; i < n; ++i) uniform[i] *= cb.window[i];

  // DTFT projection onto the probe grid. Probes past the top spacing
  // the FFT axis would represent read as zero (paper-default geometry
  // never gets there; the clamp keeps pathological spans honest).
  const double u0 = us[0];
  const double du = span / static_cast<double>(n - 1);
  const std::size_t nfft = ros::dsp::next_pow2(
      n * std::max<std::size_t>(1, config_.spectrum.zero_pad_factor));
  const double max_spacing = 0.5 * static_cast<double>(nfft / 2 - 1) /
                             (static_cast<double>(nfft) * du);
  const double norm = 1.0 / (static_cast<double>(n) * cb.window_gain);
  auto amp = arena.alloc_span<double>(P);
  auto feat = arena.alloc_span<double>(F);
  auto phase = arena.alloc_span<double>(n);
  auto zeros = arena.alloc_span<double>(n);
  std::fill(zeros.begin(), zeros.end(), 0.0);
  for (std::size_t p = 0; p < P; ++p) {
    const double d = cb.probe_spacing_lambda[p];
    amp[p] = d > max_spacing
                 ? 0.0
                 : probe_amplitude(uniform, u0, du, d, norm, phase, zeros);
  }
  pool_features(amp, cb.probe_feature, feat);

  DecodeResult out;
  out.backend_used = DecoderBackend::codebook;
  out.threshold = config_.threshold;
  out.band_rms =
      std::sqrt(v.dot(feat.data(), feat.data(), F) / static_cast<double>(F));
  const double floor = out.band_rms > 0.0 ? out.band_rms : 1e-300;

  // Per-slot modulation depth (the slot's pooled feature) drives the
  // same absolute floor as the FFT decoder: codewords that would light
  // a slot below min_modulation are excluded from the arg-max, so pure
  // noise decodes to the all-zero codeword instead of chasing ripples.
  const auto nb = static_cast<std::size_t>(config_.n_bits);
  out.bits.assign(nb, false);
  out.slot_amplitudes.assign(nb, 0.0);
  out.slot_modulation.assign(nb, 0.0);
  std::uint32_t allowed = 0;
  for (std::size_t k = 0; k < nb; ++k) {
    out.slot_modulation[k] = feat[k];
    out.slot_amplitudes[k] = feat[k] / floor;
    if (out.slot_modulation[k] > config_.min_modulation) {
      allowed |= 1u << k;
    }
  }

  // Normalized (Pearson) correlation against every codeword template.
  auto centered = arena.alloc_span<double>(F);
  double obs_mean = 0.0;
  for (std::size_t f = 0; f < F; ++f) obs_mean += feat[f];
  obs_mean /= static_cast<double>(F);
  for (std::size_t f = 0; f < F; ++f) centered[f] = feat[f] - obs_mean;
  const double obs_norm =
      std::sqrt(v.dot(centered.data(), centered.data(), F));

  out.codeword_scores.assign(C, 0.0);
  constexpr double kEps = 1e-12;
  for (std::uint32_t c = 0; c < C; ++c) {
    if (obs_norm < kEps || cb.tmpl_norm[c] < kEps) continue;  // score 0
    const double num =
        v.dot(centered.data(), cb.centered_row(c).data(), F);
    out.codeword_scores[c] = num / (obs_norm * cb.tmpl_norm[c]);
  }

  // Arg-max over codewords whose every set slot clears the modulation
  // floor. The all-zero codeword (score pinned at 0) is always allowed,
  // so a flat or noisy spectrum decodes to no bits set.
  std::uint32_t best = 0;
  double best_score = -2.0;
  double runner_up = -2.0;
  for (std::uint32_t c = 0; c < C; ++c) {
    if ((c & ~allowed) != 0) continue;
    const double s = out.codeword_scores[c];
    if (s > best_score) {
      runner_up = best_score;
      best_score = s;
      best = c;
    } else if (s > runner_up) {
      runner_up = s;
    }
  }
  out.best_codeword = best;
  out.score_margin = runner_up > -2.0 ? best_score - runner_up : 0.0;
  for (std::size_t k = 0; k < nb; ++k) {
    out.bits[k] = ((best >> k) & 1u) != 0;
  }
  return out;
}

TagDecoder::TagDecoder(DecoderConfig config)
    : resolved_(resolve_decoder_backend(config.backend)), oracle_(config) {
  if (resolved_ != DecoderBackend::fft) {
    codebook_ = std::make_shared<const CodebookDecoder>(config);
  }
}

DecodeResult TagDecoder::decode(std::span<const double> u,
                                std::span<const double> rss_linear) const {
  if (resolved_ == DecoderBackend::codebook) {
    return codebook_->decode(u, rss_linear);
  }
  DecodeResult out = oracle_.decode(u, rss_linear);
  out.backend_used = DecoderBackend::fft;
  if (resolved_ != DecoderBackend::cross_check) return out;

  // Cross-check: oracle bits win; the matched filter rides along for
  // comparison and its scores are surfaced for forensics.
  const DecodeResult cb = codebook_->decode(u, rss_linear);
  out.backend_used = DecoderBackend::cross_check;
  out.codeword_scores = cb.codeword_scores;
  out.best_codeword = cb.best_codeword;
  out.score_margin = cb.score_margin;
  out.cross_check_mismatch = out.bits != cb.bits;
  auto& reg = ros::obs::MetricsRegistry::global();
  if (out.cross_check_mismatch) {
    reg.counter("pipeline.decoder.cross_check.mismatch").inc();
    ROS_LOG_WARN(kLog, "decoder cross-check mismatch",
                 ros::obs::kv("best_codeword", cb.best_codeword),
                 ros::obs::kv("score_margin", cb.score_margin));
  } else {
    reg.counter("pipeline.decoder.cross_check.agree").inc();
  }
  return out;
}

}  // namespace ros::tag
