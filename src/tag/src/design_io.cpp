#include "ros/tag/design_io.hpp"

#include <charconv>
#include <map>
#include <sstream>

#include "ros/common/expect.hpp"

namespace ros::tag {

namespace {

std::string join_doubles(const std::vector<double>& xs) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ",";
    os << xs[i];
  }
  return os.str();
}

std::string join_ints(const std::vector<int>& xs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ",";
    os << xs[i];
  }
  return os.str();
}

std::vector<double> split_doubles(const std::string& s) {
  std::vector<double> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    ROS_EXPECT(!item.empty(), "empty list element in design file");
    out.push_back(std::stod(item));
  }
  return out;
}

std::vector<int> split_ints(const std::string& s) {
  std::vector<int> out;
  for (double v : split_doubles(s)) out.push_back(static_cast<int>(v));
  return out;
}

}  // namespace

std::string serialize_design(const TagDesign& design) {
  ROS_EXPECT(design.bits.size() ==
                 static_cast<std::size_t>(design.params.layout.n_bits),
             "bit count must match layout");
  std::ostringstream os;
  os.precision(17);
  os << "ros_tag_design_v1\n";
  std::string bits;
  for (bool b : design.bits) bits += b ? '1' : '0';
  os << "bits=" << bits << "\n";
  os << "unit_spacing_lambda=" << design.params.layout.unit_spacing_lambda
     << "\n";
  os << "design_hz=" << design.params.layout.design_hz << "\n";
  os << "psvaas_per_stack=" << design.params.psvaas_per_stack << "\n";
  if (!design.params.psvaas_per_slot.empty()) {
    os << "psvaas_per_slot=" << join_ints(design.params.psvaas_per_slot)
       << "\n";
  }
  if (!design.params.phase_weights_rad.empty()) {
    os << "phase_weights_rad="
       << join_doubles(design.params.phase_weights_rad) << "\n";
  }
  os << "switching=" << (design.params.unit.switching ? 1 : 0) << "\n";
  os << "circular=" << (design.params.unit.circular ? 1 : 0) << "\n";
  return os.str();
}

TagDesign parse_design(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string line;
  ROS_EXPECT(std::getline(is, line) && line == "ros_tag_design_v1",
             "unknown design file version");
  std::map<std::string, std::string> kv;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    ROS_EXPECT(eq != std::string::npos, "malformed design line: " + line);
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  ROS_EXPECT(kv.count("bits") == 1, "design file missing bits");

  TagDesign d;
  const std::string& bits = kv["bits"];
  for (char c : bits) {
    ROS_EXPECT(c == '0' || c == '1', "bits must be 0/1");
    d.bits.push_back(c == '1');
  }
  d.params.layout.n_bits = static_cast<int>(d.bits.size());
  if (kv.count("unit_spacing_lambda")) {
    d.params.layout.unit_spacing_lambda =
        std::stod(kv["unit_spacing_lambda"]);
  }
  if (kv.count("design_hz")) {
    d.params.layout.design_hz = std::stod(kv["design_hz"]);
  }
  if (kv.count("psvaas_per_stack")) {
    d.params.psvaas_per_stack = std::stoi(kv["psvaas_per_stack"]);
  }
  if (kv.count("psvaas_per_slot")) {
    d.params.psvaas_per_slot = split_ints(kv["psvaas_per_slot"]);
  }
  if (kv.count("phase_weights_rad")) {
    d.params.phase_weights_rad = split_doubles(kv["phase_weights_rad"]);
  }
  if (kv.count("switching")) {
    d.params.unit.switching = kv["switching"] == "1";
  }
  if (kv.count("circular")) {
    d.params.unit.circular = kv["circular"] == "1";
  }
  return d;
}

RosTag build_tag(const TagDesign& design,
                 const ros::em::StriplineStackup* stackup) {
  return RosTag(design.bits, design.params, stackup);
}

}  // namespace ros::tag
