#include "ros/tag/layout.hpp"

#include <algorithm>
#include <cmath>

#include "ros/common/expect.hpp"

namespace ros::tag {

using ros::common::wavelength;

TagLayout::TagLayout(LayoutParams params, std::vector<bool> bits)
    : params_(params), bits_(std::move(bits)) {
  positions_.push_back(0.0);  // reference stack
  for (int k = 1; k <= params_.n_bits; ++k) {
    if (bits_[static_cast<std::size_t>(k - 1)]) {
      positions_.push_back(slot_position(k));
    }
  }
}

TagLayout TagLayout::from_bits(const std::vector<bool>& bits,
                               const LayoutParams& params) {
  ROS_EXPECT(params.n_bits >= 1, "need at least one coding bit");
  ROS_EXPECT(params.unit_spacing_lambda > 0.0,
             "unit spacing must be positive");
  ROS_EXPECT(params.design_hz > 0.0, "design frequency must be positive");
  ROS_EXPECT(bits.size() == static_cast<std::size_t>(params.n_bits),
             "bit count must equal n_bits");
  return TagLayout(params, bits);
}

TagLayout TagLayout::all_ones(const LayoutParams& params) {
  return from_bits(std::vector<bool>(static_cast<std::size_t>(params.n_bits),
                                     true),
                   params);
}

double TagLayout::wavelength() const {
  return ros::common::wavelength(params_.design_hz);
}

double TagLayout::slot_spacing_lambda(int k) const {
  ROS_EXPECT(k >= 1 && k <= params_.n_bits, "slot index out of range");
  const int m = params_.n_bits + 1;  // M stacks total
  return static_cast<double>(m + k - 2) * params_.unit_spacing_lambda;
}

double TagLayout::slot_position(int k) const {
  const double sign = (k % 2 == 1) ? 1.0 : -1.0;
  return sign * slot_spacing_lambda(k) * wavelength();
}

double TagLayout::span_lambda() const {
  if (params_.n_bits == 1) return slot_spacing_lambda(1);
  return slot_spacing_lambda(params_.n_bits) +
         slot_spacing_lambda(params_.n_bits - 1);
}

double TagLayout::width() const {
  const double lambda = wavelength();
  const double stack_w = params_.stack_width_m > 0.0 ? params_.stack_width_m
                                                     : 3.0 * lambda;
  return span_lambda() * lambda + stack_w;
}

double TagLayout::far_field_distance() const {
  const double d = span_lambda() * wavelength();
  return 2.0 * d * d / wavelength();
}

std::pair<double, double> TagLayout::coding_band_lambda() const {
  return {slot_spacing_lambda(1), slot_spacing_lambda(params_.n_bits)};
}

std::vector<double> TagLayout::pairwise_spacings_lambda() const {
  std::vector<double> out;
  const double lambda = wavelength();
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    for (std::size_t j = i + 1; j < positions_.size(); ++j) {
      out.push_back(std::abs(positions_[i] - positions_[j]) / lambda);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ros::tag
