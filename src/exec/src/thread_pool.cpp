#include "ros/exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

#include "ros/obs/flight_recorder.hpp"
#include "ros/obs/log.hpp"
#include "ros/obs/metrics.hpp"

namespace ros::exec {

namespace {

/// Depth of pool-task nesting on this thread. Non-zero inside a chunk
/// body (worker or participating caller); nested parallel_for calls see
/// it and fall back to the serial path instead of deadlocking on the
/// pool they are already occupying.
thread_local int t_task_depth = 0;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::size_t default_threads() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const char* env = std::getenv("ROS_THREADS");
  if (env == nullptr || *env == '\0') return hw;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) {
    ROS_LOG_WARN("exec", "ignoring unparsable ROS_THREADS",
                 ros::obs::kv("value", env));
    return hw;
  }
  if (v == 0) return hw;
  return std::min<std::size_t>(static_cast<std::size_t>(v), 512);
}

struct ThreadPool::Job {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next{0};     ///< next unclaimed index
  std::atomic<bool> failed{false};      ///< skip remaining chunks
  std::mutex mu;                        ///< guards pending + error
  std::condition_variable done_cv;
  std::size_t pending = 0;              ///< chunks not yet finished
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t n_threads)
    : n_threads_(std::max<std::size_t>(1, n_threads)) {
  workers_.reserve(n_threads_ - 1);
  for (std::size_t i = 0; i + 1 < n_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {
std::mutex g_global_mu;
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(default_threads());
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t n_threads) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  auto& slot = global_slot();
  slot.reset();  // join the old workers before spawning the new pool
  slot = std::make_unique<ThreadPool>(n_threads);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and nothing left to run
      job = jobs_.front();
      if (job->next.load(std::memory_order_relaxed) >= job->end) {
        // Exhausted: retire it and look again.
        jobs_.pop_front();
        continue;
      }
    }
    run_chunks(*job, /*is_worker=*/true);
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.threads = n_threads_;
  s.busy = busy_.load(std::memory_order_relaxed);
  s.regions = regions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = jobs_.size();
  }
  return s;
}

void ThreadPool::run_chunks(Job& job, bool is_worker) {
  auto& reg = ros::obs::MetricsRegistry::global();
  ++t_task_depth;
  busy_.fetch_add(1, std::memory_order_relaxed);
  std::size_t executed = 0;
  for (;;) {
    const std::size_t start =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (start >= job.end) break;
    const std::size_t stop = std::min(start + job.chunk, job.end);
    const double t0 = now_ms();
    if (!job.failed.load(std::memory_order_acquire)) {
      try {
        for (std::size_t i = start; i < stop; ++i) (*job.body)(i);
      } catch (...) {
        job.failed.store(true, std::memory_order_release);
        std::lock_guard<std::mutex> lock(job.mu);
        if (!job.error) job.error = std::current_exception();
      }
    }
    reg.histogram("exec.chunk.ms").observe(now_ms() - t0);
    ++executed;
    {
      std::lock_guard<std::mutex> lock(job.mu);
      if (--job.pending == 0) job.done_cv.notify_all();
    }
  }
  busy_.fetch_sub(1, std::memory_order_relaxed);
  --t_task_depth;
  if (executed > 0) {
    reg.counter(is_worker ? "exec.chunks.worker" : "exec.chunks.caller")
        .inc(executed);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  auto& reg = ros::obs::MetricsRegistry::global();
  reg.counter("exec.parallel_for").inc();

  // Serial path: singleton pool, a single iteration, or a nested call
  // from inside a pool task. Runs inline in index order; exceptions
  // propagate directly.
  if (n_threads_ <= 1 || n == 1 || t_task_depth > 0) {
    reg.counter("exec.parallel_for.serial").inc();
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  reg.gauge("exec.pool.threads").set(static_cast<double>(n_threads_));

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  // ~4 chunks per executor balances load without shredding the range.
  const std::size_t target_chunks = n_threads_ * 4;
  job->chunk = std::max(std::max<std::size_t>(1, grain),
                        (n + target_chunks - 1) / target_chunks);
  job->body = &body;
  job->next.store(begin, std::memory_order_relaxed);
  job->pending = (n + job->chunk - 1) / job->chunk;

  regions_.fetch_add(1, std::memory_order_relaxed);
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
    depth = jobs_.size();
  }
  cv_.notify_all();
  reg.gauge("exec.pool.queue_depth").set(static_cast<double>(depth));
  auto& fr = ros::obs::FlightRecorder::global();
  if (fr.enabled() && fr.should_sample()) {
    static const std::uint32_t qd_id =
        ros::obs::FlightRecorder::global().intern("exec.pool.queue_depth");
    fr.record(ros::obs::FlightKind::queue_depth, qd_id, depth);
  }

  run_chunks(*job, /*is_worker=*/false);

  // The caller saw the cursor run out; drop the job from the queue if
  // no worker retired it yet so idle workers stop inspecting it.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->get() == job.get()) {
        jobs_.erase(it);
        break;
      }
    }
  }

  std::unique_lock<std::mutex> lock(job->mu);
  job->done_cv.wait(lock, [&] { return job->pending == 0; });
  if (job->error) std::rethrow_exception(job->error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  ThreadPool::global().parallel_for(begin, end, body, grain);
}

}  // namespace ros::exec
