#include "ros/exec/arena.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "ros/obs/metrics.hpp"

namespace ros::exec {

namespace {

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}

std::atomic<std::size_t> g_arena_high_water{0};

}  // namespace

Arena::Arena(std::size_t initial_capacity)
    : initial_capacity_(std::max<std::size_t>(initial_capacity, 64)) {
  grow_and_allocate(0, 1);  // reserve the first block eagerly
  reset();
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0 &&
         align <= kMaxAlign);
  if (current_ < blocks_.size()) {
    const std::size_t start = align_up(offset_, align);
    if (start + bytes <= blocks_[current_].size) {
      offset_ = start + bytes;
      note_high_water();
      return blocks_[current_].base + start;
    }
    // Try an already-owned later block before touching the heap.
    for (std::size_t i = current_ + 1; i < blocks_.size(); ++i) {
      if (bytes <= blocks_[i].size) {
        current_ = i;
        offset_ = bytes;
        note_high_water();
        return blocks_[i].base;
      }
    }
  }
  return grow_and_allocate(bytes, align);
}

void Arena::note_high_water() {
  const std::size_t used = block_prefix_[current_] + offset_;
  if (used <= high_water_) return;
  high_water_ = used;
  std::size_t cur = g_arena_high_water.load(std::memory_order_relaxed);
  while (used > cur &&
         !g_arena_high_water.compare_exchange_weak(
             cur, used, std::memory_order_relaxed)) {
  }
}

std::size_t Arena::global_high_water() {
  return g_arena_high_water.load(std::memory_order_relaxed);
}

void* Arena::grow_and_allocate(std::size_t bytes, std::size_t align) {
  (void)align;  // fresh block bases are aligned to kMaxAlign
  const std::size_t size = std::max(
      bytes, blocks_.empty() ? initial_capacity_ : blocks_.back().size * 2);
  Block b;
  b.raw = std::make_unique<std::byte[]>(size + kMaxAlign);
  b.base = reinterpret_cast<std::byte*>(
      align_up(reinterpret_cast<std::uintptr_t>(b.raw.get()), kMaxAlign));
  b.size = size;
  block_prefix_.push_back(capacity_);
  blocks_.push_back(std::move(b));
  current_ = blocks_.size() - 1;
  offset_ = bytes;
  capacity_ += size;
  ++grows_;
  note_high_water();

  auto& reg = ros::obs::MetricsRegistry::global();
  reg.counter("exec.arena.grows").inc();
  reg.counter("exec.arena.grow_bytes").inc(size);
  return blocks_.back().base;
}

void Arena::rewind(std::size_t block, std::size_t used) {
  current_ = block;
  offset_ = used;
}

Arena& Arena::thread_local_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace ros::exec
