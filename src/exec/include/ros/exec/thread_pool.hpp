// Deterministic fork-join execution (ros::exec).
//
// A reusable worker pool with `parallel_for` / `parallel_map` primitives
// sized by the ROS_THREADS environment variable (default:
// hardware_concurrency; 1 = exact serial fallback — the loop body runs
// inline, in index order, on the calling thread). The hot paths built on
// top of it (the Interrogator frame loop, DE-GA generation evaluation,
// beam-shaping objectives) are deterministic *by construction*: every
// loop iteration owns its output slot and, where randomness is involved,
// derives its own counter-based RNG stream (see
// ros::common::derive_stream_seed), so serial and parallel runs produce
// bit-identical results.
//
// Scheduling: a parallel_for splits [begin, end) into contiguous chunks;
// workers and the calling thread claim chunks from a shared atomic
// cursor (the caller always participates, so a pool of N executors uses
// N-1 background workers). Nested parallel_for calls from inside a pool
// task run serially inline — simple, deadlock-free, and still correct.
// The first exception thrown by any chunk is captured and rethrown on
// the calling thread after the join.
//
// Observability (via ros::obs::MetricsRegistry::global()):
//   exec.pool.threads        gauge    executor count of the global pool
//   exec.parallel_for        counter  fork-join regions entered
//   exec.parallel_for.serial counter  regions that ran the serial path
//   exec.chunks.worker       counter  chunks executed by pool workers
//   exec.chunks.caller       counter  chunks "stolen" by the caller
//   exec.chunk.ms            histogram per-chunk latency
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ros::exec {

/// Point-in-time pool introspection (see ThreadPool::stats()).
struct PoolStats {
  std::size_t threads = 1;     ///< executor count (workers + caller)
  std::size_t busy = 0;        ///< executors currently running chunks
  std::size_t queue_depth = 0; ///< jobs parked in the pool's deque
  std::uint64_t regions = 0;   ///< parallel_for regions dispatched
};

/// Executor count requested by the environment: ROS_THREADS when set to
/// a positive integer, otherwise std::thread::hardware_concurrency()
/// (also the fallback for ROS_THREADS=0, empty, or unparsable). Always
/// >= 1; clamped to 512.
std::size_t default_threads();

class ThreadPool {
 public:
  /// A pool of `n_threads` executors: `n_threads - 1` background
  /// workers plus the thread that calls parallel_for. `n_threads <= 1`
  /// spawns nothing and every parallel_for runs serially inline.
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Executor count (workers + caller), >= 1.
  std::size_t threads() const { return n_threads_; }

  /// Relaxed-read snapshot of pool activity: busy executors, parked
  /// jobs, and how many parallel regions (non-serial parallel_for
  /// calls) this pool has dispatched. Values may be mid-update — meant
  /// for gauges and diagnostics, not for synchronization.
  PoolStats stats() const;

  /// Process-wide pool, created on first use with default_threads().
  static ThreadPool& global();

  /// Replace the global pool (tests, scaling benches). Must not be
  /// called while any thread is inside the global pool's parallel_for;
  /// references previously returned by global() are invalidated.
  static void set_global_threads(std::size_t n_threads);

  /// Run body(i) for every i in [begin, end). Blocks until all
  /// iterations finish. Iterations may run concurrently and in any
  /// order across chunks; within a chunk they run in index order. The
  /// serial path (pool size 1, single iteration, or a nested call from
  /// inside a pool task) runs strictly in index order on the calling
  /// thread. The first exception thrown by any iteration is rethrown
  /// here after all in-flight chunks settle; remaining chunks are
  /// skipped. `grain` is the minimum iterations per chunk.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// out[i] = fn(i) for i in [0, n). T must be default-constructible
  /// and, with a pool larger than 1, fn must be safe to call
  /// concurrently. Result order is always [fn(0), fn(1), ... fn(n-1)].
  template <typename T, typename Fn>
  std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(0, n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Job;

  void worker_loop();
  void run_chunks(Job& job, bool is_worker);

  std::size_t n_threads_ = 1;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
  std::atomic<std::size_t> busy_{0};
  std::atomic<std::uint64_t> regions_{0};
};

/// parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// parallel_map on the global pool.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
  return ThreadPool::global().parallel_map<T>(n, std::forward<Fn>(fn));
}

}  // namespace ros::exec
