// Per-thread bump arena for frame-loop scratch.
//
// The interrogation hot paths (Interrogator::run / decode_drive) need
// short-lived buffers every frame: SoA phase/response spans for the
// simd kernels, FFT scratch, gathered beamforming bins. Allocating
// those from the heap each frame is both slow and nondeterministic
// under ASan/TSan; the arena turns them into pointer bumps inside a
// thread-local block that is reused frame after frame.
//
// Lifetime rules (see DESIGN.md, "ros::simd"):
//   * Arena::Scope marks the arena on entry and rewinds on exit; all
//     spans handed out inside the scope die with it. Scopes nest like
//     stack frames; never let a span outlive its scope.
//   * alloc_span<T>() requires trivially destructible T -- nothing is
//     destroyed on rewind, memory is simply reused.
//   * thread_local_arena() hands each thread (pool workers included)
//     its own arena; no locking, no sharing, and per-backend results
//     cannot depend on which worker ran the frame.
//   * Blocks grow geometrically and are never returned to the heap
//     until the arena dies with its thread, so a warmed-up loop does
//     zero heap allocations: `exec.arena.grows` stays flat, which is
//     exactly what the zero-allocation tests assert.
//
// Metrics (process-wide, ros::obs):
//   exec.arena.grows       counter: heap blocks acquired by any arena
//   exec.arena.grow_bytes  counter: bytes of those blocks
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace ros::exec {

class Arena {
 public:
  static constexpr std::size_t kDefaultInitialCapacity = 1 << 16;
  static constexpr std::size_t kMaxAlign = 64;

  explicit Arena(std::size_t initial_capacity = kDefaultInitialCapacity);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw bump allocation. align must be a power of two <= kMaxAlign.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Scratch span of n T's. Uninitialized when T is trivially
  /// default-constructible (double, int...), default-constructed
  /// otherwise (std::complex zero-fills). T must be trivially
  /// destructible -- rewind runs no destructors.
  template <typename T>
  std::span<T> alloc_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena spans are rewound, never destroyed");
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    if constexpr (!std::is_trivially_default_constructible_v<T>) {
      for (std::size_t i = 0; i < n; ++i) ::new (p + i) T();
    }
    return {p, n};
  }

  /// RAII mark/rewind. Everything allocated while the scope is alive
  /// is recycled when it ends.
  class Scope {
   public:
    explicit Scope(Arena& a)
        : arena_(a), block_(a.current_), used_(a.offset_) {}
    ~Scope() { arena_.rewind(block_, used_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena& arena_;
    std::size_t block_;
    std::size_t used_;
  };

  /// Rewind to empty; keeps every block for reuse.
  void reset() { rewind(0, 0); }

  /// Total bytes owned across all blocks.
  std::size_t capacity() const { return capacity_; }
  /// Times this arena had to take a new block from the heap.
  std::uint64_t grow_count() const { return grows_; }
  /// Peak bytes in use at once by this arena (monotonic; survives
  /// rewinds). "In use" counts full earlier blocks plus the bump offset,
  /// so it is the smallest single block that would have fit the load.
  std::size_t high_water() const { return high_water_; }

  /// Max high_water() ever observed across every arena in the process
  /// (pool workers each own one): the per-thread scratch footprint a
  /// deployment has to budget for.
  static std::size_t global_high_water();

  /// The calling thread's arena (created on first use, lives with the
  /// thread). Pool workers each get their own.
  static Arena& thread_local_arena();

 private:
  struct Block {
    std::unique_ptr<std::byte[]> raw;
    std::byte* base = nullptr;  ///< raw aligned up to kMaxAlign
    std::size_t size = 0;
  };

  void rewind(std::size_t block, std::size_t used);
  void* grow_and_allocate(std::size_t bytes, std::size_t align);
  void note_high_water();

  std::vector<Block> blocks_;
  std::vector<std::size_t> block_prefix_;  ///< bytes before block i
  std::size_t current_ = 0;  ///< index of the block being bumped
  std::size_t offset_ = 0;   ///< bump offset within blocks_[current_]
  std::size_t capacity_ = 0;
  std::size_t initial_capacity_ = kDefaultInitialCapacity;
  std::uint64_t grows_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace ros::exec
