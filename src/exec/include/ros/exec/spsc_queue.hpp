// Lock-free single-producer / single-consumer bounded ring queue
// (ros::exec).
//
// The streaming interrogation pipeline (ros::pipeline::
// StreamingInterrogator) connects its stages with these queues: the
// synthesis stage produces per-frame artifacts on one thread, the merge/
// cluster/decode state machine consumes them in FIFO order on another.
// Capacity is the backpressure contract — a full queue makes push()
// wait, so a slow consumer throttles the producer instead of letting
// frames pile up without bound. That is what keeps a long-running
// stream's memory footprint independent of drive length.
//
// Memory model: the classic Lamport ring with C++11 atomics. `head_` is
// written only by the consumer, `tail_` only by the producer; each side
// reads the other's index with acquire and publishes its own with
// release, so the slot contents written before a release-store to
// `tail_` are visible after the acquire-load in try_pop (and vice versa
// for slot reuse after pop). Slots are plain T values moved in and out;
// there is exactly one producer thread and one consumer thread by
// contract (asserted nowhere — TSan enforces it in the stress suite).
//
// FIFO order is load-bearing, not incidental: the streaming pipeline's
// bit-determinism relies on frames reaching the consumer in exactly the
// order the producer pushed them.
//
// close() lets the producer signal end-of-stream: pop() drains whatever
// is buffered, then returns false instead of blocking forever.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "ros/common/expect.hpp"

namespace ros::exec {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` usable slots (>= 1). One extra slot distinguishes full
  /// from empty, so the ring allocates capacity + 1 entries.
  explicit SpscQueue(std::size_t capacity)
      : slots_(capacity + 1), mask_size_(capacity + 1) {
    ROS_EXPECT(capacity >= 1, "SPSC queue capacity must be >= 1");
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return mask_size_ - 1; }

  /// Items currently buffered. Racy by nature (either side may be
  /// mid-operation); meant for gauges and tests, not for control flow.
  std::size_t depth() const {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return t >= h ? t - h : t + mask_size_ - h;
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Producer: enqueue if a slot is free. False when full or closed.
  bool try_push(T&& value) {
    if (closed_.load(std::memory_order_relaxed)) return false;
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t next = increment(t);
    if (next == head_.load(std::memory_order_acquire)) return false;
    slots_[t] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Producer: enqueue, waiting while the queue is full (backpressure).
  /// Spins briefly, then yields. False only when the queue was closed.
  bool push(T&& value) {
    int spins = 0;
    while (!try_push(std::move(value))) {
      if (closed_.load(std::memory_order_acquire)) return false;
      if (++spins < kSpinLimit) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
    return true;
  }

  /// Consumer: dequeue if an item is buffered. False when empty.
  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[h]);
    head_.store(increment(h), std::memory_order_release);
    return true;
  }

  /// Consumer: dequeue, waiting while the queue is empty. Returns false
  /// when the queue is closed AND fully drained — the end-of-stream
  /// signal.
  bool pop(T& out) {
    int spins = 0;
    while (!try_pop(out)) {
      if (closed_.load(std::memory_order_acquire)) {
        // Drain race: close() may have landed between our failed
        // try_pop and this check while items were still in flight.
        if (try_pop(out)) return true;
        return false;
      }
      if (++spins < kSpinLimit) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
    return true;
  }

  /// Producer (or an external supervisor): mark end-of-stream. Items
  /// already buffered remain poppable; push() calls fail from now on.
  void close() { closed_.store(true, std::memory_order_release); }

 private:
  static constexpr int kSpinLimit = 64;

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

  std::size_t increment(std::size_t i) const {
    return i + 1 == mask_size_ ? 0 : i + 1;
  }

  std::vector<T> slots_;
  std::size_t mask_size_;  ///< slots_.size() == capacity + 1
  // Separate cache lines so producer stores never invalidate the
  // consumer's line and vice versa.
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace ros::exec
