#include "ros/testkit/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"
#include "ros/tag/tag.hpp"

namespace ros::testkit {

using ros::common::Rng;

namespace {

double clampd(double v, double lo, double hi) {
  if (!std::isfinite(v)) return lo;
  return std::clamp(v, lo, hi);
}

int clampi(int v, int lo, int hi) { return std::clamp(v, lo, hi); }

ros::scene::ClutterObject::Params clutter_params(const ClutterSpec& c) {
  const ros::scene::Vec2 pos{c.x, c.y};
  switch (c.cls) {
    case 0: return ros::scene::tripod_params(pos);
    case 1: return ros::scene::parking_meter_params(pos);
    case 2: return ros::scene::street_lamp_params(pos);
    case 3: return ros::scene::road_sign_params(pos);
    case 4: return ros::scene::pedestrian_params(pos);
    default: return ros::scene::tree_params(pos);
  }
}

}  // namespace

void Scenario::sanitize() {
  // Payload: 2-5 coding slots keeps one run affordable for the fuzz
  // loop while still sweeping tag-family width; never all-zero.
  n_bits = clampi(n_bits, 2, 5);
  bits &= (1u << n_bits) - 1u;
  if (bits == 0) bits = 1;

  // Hardware: the paper's three stack heights.
  psvaas_per_stack = psvaas_per_stack <= 11 ? 8
                     : psvaas_per_stack <= 23 ? 16
                                              : 32;

  // Drive geometry: the evaluated deployment envelope (Sec. 7.1).
  lane_offset_m = clampd(lane_offset_m, 1.5, 6.0);
  speed_mps = clampd(speed_mps, 0.5, 12.0);
  span_m = clampd(span_m, 2.0, 8.0);

  weather = clampi(weather, 0, 3);
  extra_noise_dbm = clampd(extra_noise_dbm, -300.0, -70.0);
  relative_drift = clampd(relative_drift, 0.0, 0.05);
  jitter_std_m = clampd(jitter_std_m, 0.0, 0.02);
  decode_fov_rad = clampd(decode_fov_rad, 0.0, ros::common::kPi);
  if (noise_seed == 0) noise_seed = 1;
  ground_reflection = clampd(ground_reflection, 0.0, 0.5);

  // Frame budget: the upper clamp keeps a fuzz iteration affordable.
  // There is deliberately NO lower clamp: degenerate passes (a single
  // frame, or fewer frames than a streaming window) are part of the
  // specified envelope and the streaming/batch equivalence oracles must
  // hold on them too.
  frame_stride = clampi(frame_stride, 1, 200);
  const double duration_s = span_m / speed_mps;
  const double frames_at =
      duration_s * 1000.0 / static_cast<double>(frame_stride);
  if (frames_at > 400.0) {
    frame_stride = static_cast<int>(std::ceil(duration_s * 1000.0 / 400.0));
  }

  if (clutter.size() > 4) clutter.resize(4);
  for (auto& c : clutter) {
    c.cls = clampi(c.cls, 0, 5);
    c.x = clampd(c.x, -6.0, 6.0);
    // Keep clutter off the tag itself so "tag cluster absorbed clutter"
    // stays a detection outcome, not a generator artifact.
    if (std::abs(c.x) < 0.8 && std::abs(c.y) < 0.8) c.x = 1.3;
    c.y = clampd(c.y, -1.0, 2.0);
  }
}

std::vector<bool> Scenario::bit_vector() const {
  std::vector<bool> out(static_cast<std::size_t>(n_bits));
  for (int k = 0; k < n_bits; ++k) {
    out[static_cast<std::size_t>(k)] = (bits >> k) & 1u;
  }
  return out;
}

std::size_t Scenario::n_frames() const {
  const double duration_s = span_m / speed_mps;
  return static_cast<std::size_t>(
      duration_s * 1000.0 / static_cast<double>(frame_stride));
}

std::string Scenario::encode() const {
  std::ostringstream os;
  os.precision(17);
  os << "# roztest scenario v1\n";
  os << "n_bits = " << n_bits << "\n";
  os << "bits = " << bits << "\n";
  os << "psvaas_per_stack = " << psvaas_per_stack << "\n";
  os << "beam_shaped = " << (beam_shaped ? 1 : 0) << "\n";
  os << "lane_offset_m = " << lane_offset_m << "\n";
  os << "speed_mps = " << speed_mps << "\n";
  os << "span_m = " << span_m << "\n";
  os << "frame_stride = " << frame_stride << "\n";
  os << "weather = " << weather << "\n";
  os << "extra_noise_dbm = " << extra_noise_dbm << "\n";
  os << "relative_drift = " << relative_drift << "\n";
  os << "jitter_std_m = " << jitter_std_m << "\n";
  os << "decode_fov_rad = " << decode_fov_rad << "\n";
  os << "noise_seed = " << noise_seed << "\n";
  os << "ground_bounce = " << (ground_bounce ? 1 : 0) << "\n";
  os << "ground_reflection = " << ground_reflection << "\n";
  for (const auto& c : clutter) {
    os << "clutter = " << c.cls << " " << c.x << " " << c.y << "\n";
  }
  return os.str();
}

Scenario Scenario::parse(std::string_view text) {
  Scenario s;
  s.clutter.clear();
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos || line.starts_with("#")) continue;
    std::istringstream key_in(line.substr(0, eq));
    std::string key;
    key_in >> key;
    std::istringstream val(line.substr(eq + 1));
    if (key == "n_bits") {
      val >> s.n_bits;
    } else if (key == "bits") {
      val >> s.bits;
    } else if (key == "psvaas_per_stack") {
      val >> s.psvaas_per_stack;
    } else if (key == "beam_shaped") {
      int b = 1;
      val >> b;
      s.beam_shaped = b != 0;
    } else if (key == "lane_offset_m") {
      val >> s.lane_offset_m;
    } else if (key == "speed_mps") {
      val >> s.speed_mps;
    } else if (key == "span_m") {
      val >> s.span_m;
    } else if (key == "frame_stride") {
      val >> s.frame_stride;
    } else if (key == "weather") {
      val >> s.weather;
    } else if (key == "extra_noise_dbm") {
      val >> s.extra_noise_dbm;
    } else if (key == "relative_drift") {
      val >> s.relative_drift;
    } else if (key == "jitter_std_m") {
      val >> s.jitter_std_m;
    } else if (key == "decode_fov_rad") {
      val >> s.decode_fov_rad;
    } else if (key == "noise_seed") {
      val >> s.noise_seed;
    } else if (key == "ground_bounce") {
      int b = 0;
      val >> b;
      s.ground_bounce = b != 0;
    } else if (key == "ground_reflection") {
      val >> s.ground_reflection;
    } else if (key == "clutter") {
      ClutterSpec c;
      if (val >> c.cls >> c.x >> c.y) s.clutter.push_back(c);
    }
    // Unknown keys and parse misses fall through to the defaults.
  }
  s.sanitize();
  return s;
}

ros::scene::Scene Scenario::make_scene(
    const ros::em::StriplineStackup* stackup) const {
  ROS_EXPECT(stackup != nullptr, "stackup must not be null");
  ros::scene::Scene world(static_cast<ros::scene::Weather>(weather));
  if (ground_bounce) {
    ros::scene::GroundBounce g;
    g.enabled = true;
    g.reflection_coefficient = ground_reflection;
    world.set_ground(g);
  }
  ros::tag::RosTag::Params tp;
  tp.layout.n_bits = n_bits;
  tp.psvaas_per_stack = psvaas_per_stack;
  if (beam_shaped) {
    tp.phase_weights_rad = ros::tag::default_beam_weights(psvaas_per_stack);
  }
  world.add_tag(ros::tag::RosTag(bit_vector(), tp, stackup),
                {{0.0, 0.0}, {0.0, 1.0}, 0.0});
  for (const auto& c : clutter) {
    world.add_clutter(clutter_params(c));
  }
  return world;
}

ros::scene::StraightDrive Scenario::make_drive() const {
  return ros::scene::StraightDrive({.lane_offset_m = lane_offset_m,
                                    .speed_mps = speed_mps,
                                    .start_x_m = -span_m / 2.0,
                                    .end_x_m = span_m / 2.0});
}

ros::pipeline::InterrogatorConfig Scenario::make_config() const {
  ros::pipeline::InterrogatorConfig cfg;
  cfg.frame_stride = frame_stride;
  cfg.extra_noise_dbm = extra_noise_dbm;
  cfg.decode_fov_rad = decode_fov_rad;
  cfg.noise_seed = noise_seed;
  cfg.tracking.relative_drift = relative_drift;
  cfg.tracking.jitter_std_m = jitter_std_m;
  cfg.decoder.n_bits = n_bits;
  return cfg;
}

Scenario mutate(const Scenario& s, Rng& rng) {
  Scenario out = s;
  const int n_mutations = rng.uniform_int(1, 3);
  for (int m = 0; m < n_mutations; ++m) {
    switch (rng.uniform_int(0, 14)) {
      case 0:  // flip a payload bit
        out.bits ^= 1u << rng.uniform_int(0, std::max(0, out.n_bits - 1));
        break;
      case 1:
        out.n_bits += rng.uniform_int(-1, 1);
        break;
      case 2:
        out.lane_offset_m *= rng.uniform(0.7, 1.4);
        break;
      case 3:
        out.speed_mps *= rng.uniform(0.6, 1.7);
        break;
      case 4:
        out.span_m *= rng.uniform(0.7, 1.4);
        break;
      case 5:
        out.frame_stride += rng.uniform_int(-5, 5);
        break;
      case 6:
        out.weather = rng.uniform_int(0, 3);
        break;
      case 7:
        out.extra_noise_dbm =
            rng.bernoulli(0.5) ? -300.0 : rng.uniform(-130.0, -75.0);
        break;
      case 8:
        out.relative_drift = rng.uniform(0.0, 0.05);
        out.jitter_std_m = rng.uniform(0.0, 0.02);
        break;
      case 9:
        out.decode_fov_rad =
            rng.bernoulli(0.4) ? 0.0 : rng.uniform(0.1, ros::common::kPi);
        break;
      case 10:
        out.noise_seed =
            ros::common::splitmix64(out.noise_seed + 0x9e3779b9u);
        break;
      case 11:  // add / move / drop a clutter object
        if (out.clutter.size() < 4 && rng.bernoulli(0.5)) {
          out.clutter.push_back({rng.uniform_int(0, 5),
                                 rng.uniform(-6.0, 6.0),
                                 rng.uniform(-1.0, 2.0)});
        } else if (!out.clutter.empty()) {
          auto& c = out.clutter[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(out.clutter.size()) - 1))];
          if (rng.bernoulli(0.3)) {
            out.clutter.erase(out.clutter.begin() +
                              (&c - out.clutter.data()));
          } else {
            c.x += rng.uniform(-1.5, 1.5);
            c.y += rng.uniform(-0.5, 0.5);
          }
        }
        break;
      case 12:
        out.ground_bounce = rng.bernoulli(0.5);
        out.ground_reflection = rng.uniform(0.0, 0.4);
        break;
      case 13:  // degenerate frame counts: 1, 2, ... window-sized feeds
        out.span_m = 2.0;
        out.speed_mps = rng.uniform(8.0, 12.0);
        out.frame_stride = rng.uniform_int(40, 200);
        break;
      default:
        out.psvaas_per_stack =
            std::vector<int>{8, 16, 32}[static_cast<std::size_t>(
                rng.uniform_int(0, 2))];
        out.beam_shaped = rng.bernoulli(0.8);
        break;
    }
  }
  out.sanitize();
  return out;
}

}  // namespace ros::testkit
