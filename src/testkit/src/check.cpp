#include "ros/testkit/check.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace ros::testkit {

namespace {

// Arbitrary fixed default so unconfigured runs are reproducible too; a
// failure report always prints the seed actually used.
constexpr std::uint64_t kDefaultRunSeed = 0x526f532d54657374ull;  // "RoS-Test"

std::uint64_t parse_seed(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  return std::strtoull(s, nullptr, 0);  // base 0: decimal or 0x hex
}

}  // namespace

std::uint64_t resolve_run_seed(std::uint64_t cfg_seed) {
  if (cfg_seed != 0) return cfg_seed;
  const std::uint64_t env = parse_seed(std::getenv("ROS_PROPERTY_SEED"));
  return env != 0 ? env : kDefaultRunSeed;
}

int resolve_cases(int cfg_cases) {
  const char* s = std::getenv("ROS_PROPERTY_CASES");
  if (s != nullptr && *s != '\0') {
    const long n = std::strtol(s, nullptr, 10);
    if (n > 0) return static_cast<int>(n);
  }
  return cfg_cases;
}

std::string failure_message(const char* name, const PropertyResult& r) {
  std::ostringstream os;
  os << "property \"" << name << "\" falsified at case " << r.failing_case
     << " of " << r.cases_run << " (run seed 0x" << std::hex << r.run_seed
     << std::dec << ")\n";
  os << "  counterexample: " << r.counterexample << "\n";
  if (!r.original.empty() && r.original != r.counterexample) {
    os << "  before shrinking (" << r.shrink_steps
       << " steps): " << r.original << "\n";
  }
  if (!r.note.empty()) os << "  detail: " << r.note << "\n";
  os << "  reproduce: ROS_PROPERTY_SEED=0x" << std::hex << r.run_seed
     << std::dec << " (same binary, same property)";
  return os.str();
}

Gen<double> log_uniform(double lo, double hi) {
  ROS_EXPECT(lo > 0.0 && lo <= hi, "log_uniform needs 0 < lo <= hi");
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  return Gen<double>([llo, lhi](ros::common::Rng& rng) {
    return std::exp(rng.uniform(llo, lhi));
  });
}

Gen<std::vector<std::size_t>> permutation_of(std::size_t n) {
  return Gen<std::vector<std::size_t>>([n](ros::common::Rng& rng) {
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    // Fisher-Yates with draws from the shared uniform_int path so the
    // stream stays engine-stable.
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(i) - 1));
      std::swap(p[i - 1], p[j]);
    }
    return p;
  });
}

}  // namespace ros::testkit
