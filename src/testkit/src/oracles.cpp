#include "ros/testkit/oracles.hpp"

#include <cmath>
#include <sstream>

#include "ros/common/random.hpp"
#include "ros/obs/json.hpp"

namespace ros::testkit {

namespace {

using ros::pipeline::DecodeDriveResult;
using ros::pipeline::InterrogationReport;
using ros::pipeline::RssSample;

bool finite(double v) { return std::isfinite(v); }

std::string describe_sample(const RssSample& s, std::size_t i) {
  std::ostringstream os;
  os << "sample " << i << " (u=" << s.u << ", rss_dbm=" << s.rss_dbm
     << ", rss_w=" << s.rss_w << ", range_m=" << s.range_m << ")";
  return os.str();
}

OracleVerdict check_samples(const std::vector<RssSample>& samples) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    if (!finite(s.u) || !finite(s.rss_dbm) || !finite(s.rss_w) ||
        !finite(s.range_m)) {
      return OracleVerdict::fail("non-finite field in " +
                                 describe_sample(s, i));
    }
    if (s.u < -1.0 - 1e-9 || s.u > 1.0 + 1e-9) {
      return OracleVerdict::fail("u outside [-1, 1] in " +
                                 describe_sample(s, i));
    }
    if (s.rss_w < 0.0) {
      return OracleVerdict::fail("negative linear power in " +
                                 describe_sample(s, i));
    }
    if (s.range_m < 0.0) {
      return OracleVerdict::fail("negative range in " +
                                 describe_sample(s, i));
    }
  }
  return OracleVerdict::pass();
}

/// A decode either produced a full payload read (bits.size() == n_bits,
/// per-slot vectors aligned, every number finite and non-negative) or
/// degraded to an explicit no-read (all three vectors empty).
OracleVerdict check_decode_result(const ros::tag::DecodeResult& d,
                                  int n_bits) {
  if (d.bits.empty() && d.slot_amplitudes.empty() &&
      d.slot_modulation.empty()) {
    return OracleVerdict::pass();  // explicit no-read
  }
  if (d.bits.size() != static_cast<std::size_t>(n_bits)) {
    return OracleVerdict::fail(
        "decoded payload width " + std::to_string(d.bits.size()) +
        " != tag family width " + std::to_string(n_bits));
  }
  if (d.slot_amplitudes.size() != d.bits.size() ||
      d.slot_modulation.size() != d.bits.size()) {
    return OracleVerdict::fail("slot vectors misaligned with payload");
  }
  if (!finite(d.band_rms) || d.band_rms < 0.0) {
    return OracleVerdict::fail("band_rms not a finite non-negative value");
  }
  for (std::size_t k = 0; k < d.bits.size(); ++k) {
    if (!finite(d.slot_amplitudes[k]) || d.slot_amplitudes[k] < 0.0 ||
        !finite(d.slot_modulation[k]) || d.slot_modulation[k] < 0.0) {
      return OracleVerdict::fail("slot " + std::to_string(k + 1) +
                                 " amplitude/modulation not finite >= 0");
    }
  }
  for (std::size_t i = 0; i < d.spectrum.amplitude.size(); ++i) {
    if (!finite(d.spectrum.amplitude[i]) || d.spectrum.amplitude[i] < 0.0) {
      return OracleVerdict::fail("spectrum bin " + std::to_string(i) +
                                 " not finite >= 0");
    }
  }
  return OracleVerdict::pass();
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return ros::common::splitmix64(h ^ (v + 0x9e3779b97f4a7c15ull));
}

std::uint64_t bits_key(const std::vector<bool>& bits) {
  std::uint64_t key = 1;  // distinguishes empty from all-zero
  for (bool b : bits) key = (key << 1) | (b ? 1u : 0u);
  return key;
}

int db_bucket(double dbm) {
  if (!std::isfinite(dbm)) return -1000;
  return static_cast<int>(std::floor(dbm / 5.0));
}

}  // namespace

OracleVerdict check_report_invariants(const InterrogationReport& report,
                                      const Scenario& s) {
  const auto& tel = report.telemetry;
  if (!tel.funnel_consistent()) {
    return OracleVerdict::fail(
        "telemetry funnel widened: points " + std::to_string(tel.n_points) +
        " clusters " + std::to_string(tel.n_clusters) + " candidates " +
        std::to_string(tel.n_candidates) + " tags " +
        std::to_string(tel.n_tags));
  }
  if (report.n_frames == 0) {
    return OracleVerdict::fail("report claims zero synthesized frames");
  }
  for (std::size_t i = 0; i < report.cloud.points.size(); ++i) {
    const auto& p = report.cloud.points[i];
    if (!finite(p.world.x) || !finite(p.world.y) || !finite(p.rss_dbm)) {
      return OracleVerdict::fail("non-finite cloud point " +
                                 std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < report.clusters.size(); ++i) {
    const auto& c = report.clusters[i];
    if (c.n_points == 0 || c.point_indices.empty()) {
      return OracleVerdict::fail("empty cluster " + std::to_string(i));
    }
    if (!finite(c.centroid.x) || !finite(c.centroid.y) ||
        !finite(c.size_m2) || c.size_m2 < 0.0 || !finite(c.density) ||
        c.density < 0.0 || !finite(c.mean_rss_dbm)) {
      return OracleVerdict::fail("non-finite/negative feature in cluster " +
                                 std::to_string(i));
    }
    for (std::size_t idx : c.point_indices) {
      if (idx >= report.cloud.points.size()) {
        return OracleVerdict::fail("cluster " + std::to_string(i) +
                                   " references point " +
                                   std::to_string(idx) + " out of range");
      }
    }
  }
  if (report.candidates.size() < report.tags.size()) {
    return OracleVerdict::fail("more decoded tags than candidates");
  }
  for (std::size_t t = 0; t < report.tags.size(); ++t) {
    const auto& tag = report.tags[t];
    if (!finite(tag.candidate.rss_loss_db)) {
      return OracleVerdict::fail("non-finite rss_loss on tag " +
                                 std::to_string(t));
    }
    if (auto v = check_samples(tag.samples); !v.ok) return v;
    if (auto v = check_decode_result(tag.decode, s.n_bits); !v.ok) {
      return v;
    }
  }
  return OracleVerdict::pass();
}

OracleVerdict check_decode_invariants(const DecodeDriveResult& result,
                                      const Scenario& s) {
  if (auto v = check_samples(result.samples); !v.ok) return v;
  if (auto v = check_decode_result(result.decode, s.n_bits); !v.ok) {
    return v;
  }
  if (!result.samples.empty() && !finite(result.mean_rss_dbm)) {
    return OracleVerdict::fail("non-finite mean RSS over a non-empty pass");
  }
  if (result.samples.size() > result.telemetry.n_frames) {
    return OracleVerdict::fail(
        "more RSS samples than frames: " +
        std::to_string(result.samples.size()) + " > " +
        std::to_string(result.telemetry.n_frames));
  }
  return OracleVerdict::pass();
}

std::uint64_t behavior_signature(const InterrogationReport& report,
                                 const Scenario& s) {
  std::uint64_t h = 0xf0f0;
  h = mix(h, static_cast<std::uint64_t>(s.weather));
  h = mix(h, report.clusters.size());
  h = mix(h, report.candidates.size());
  h = mix(h, report.tags.size());
  h = mix(h, static_cast<std::uint64_t>(
                 report.cloud.points.size() / 64));  // coarse cloud size
  for (const auto& tag : report.tags) {
    h = mix(h, bits_key(tag.decode.bits));
    h = mix(h, static_cast<std::uint64_t>(
                   db_bucket(tag.candidate.rss_normal_dbm) + 512));
  }
  return h;
}

std::uint64_t behavior_signature(const DecodeDriveResult& result,
                                 const Scenario& s) {
  std::uint64_t h = 0x0d0d;
  h = mix(h, static_cast<std::uint64_t>(s.weather));
  h = mix(h, bits_key(result.decode.bits));
  h = mix(h, static_cast<std::uint64_t>(result.decode.bits ==
                                        s.bit_vector()));
  h = mix(h,
          static_cast<std::uint64_t>(db_bucket(result.mean_rss_dbm) + 512));
  h = mix(h, result.samples.size() / 32);
  return h;
}

namespace {

void write_decode(ros::obs::JsonWriter& w,
                  const ros::tag::DecodeResult& d) {
  w.begin_object();
  w.key("bits");
  w.begin_array();
  for (bool b : d.bits) w.value(b);
  w.end_array();
  w.key("slot_amplitudes");
  w.begin_array();
  for (double a : d.slot_amplitudes) w.value(a);
  w.end_array();
  w.key("slot_modulation");
  w.begin_array();
  for (double a : d.slot_modulation) w.value(a);
  w.end_array();
  w.key("band_rms").value(d.band_rms);
  w.end_object();
}

}  // namespace

std::string report_to_json(const InterrogationReport& report) {
  ros::obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("ros-report-v1");
  w.key("n_frames").value(static_cast<std::uint64_t>(report.n_frames));
  w.key("n_points").value(
      static_cast<std::uint64_t>(report.cloud.points.size()));
  w.key("clusters");
  w.begin_array();
  for (const auto& c : report.clusters) {
    w.begin_object();
    w.key("n_points").value(static_cast<std::uint64_t>(c.n_points));
    w.key("centroid_x").value(c.centroid.x);
    w.key("centroid_y").value(c.centroid.y);
    w.key("size_m2").value(c.size_m2);
    w.key("extent_m").value(c.extent_m);
    w.key("mean_rss_dbm").value(c.mean_rss_dbm);
    w.end_object();
  }
  w.end_array();
  w.key("candidates");
  w.begin_array();
  for (const auto& c : report.candidates) {
    w.begin_object();
    w.key("is_tag").value(c.is_tag);
    w.key("rss_loss_db").value(c.rss_loss_db);
    w.key("rss_normal_dbm").value(c.rss_normal_dbm);
    w.key("rss_switched_dbm").value(c.rss_switched_dbm);
    w.end_object();
  }
  w.end_array();
  w.key("tags");
  w.begin_array();
  for (const auto& t : report.tags) {
    w.begin_object();
    w.key("n_samples").value(static_cast<std::uint64_t>(t.samples.size()));
    w.key("decode");
    write_decode(w, t.decode);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string json_numeric_diff(const ros::obs::JsonValue& actual,
                              const ros::obs::JsonValue& expected,
                              double rel_tol, double abs_tol) {
  using ros::obs::JsonValue;
  struct Walker {
    double rel, abs;
    std::string diff(const JsonValue& a, const JsonValue& e,
                     const std::string& path) {
      if (a.type != e.type) {
        return path + ": type mismatch";
      }
      switch (a.type) {
        case JsonValue::Type::number: {
          const double tol = std::max(abs, rel * std::abs(e.number));
          if (std::abs(a.number - e.number) > tol) {
            std::ostringstream os;
            os.precision(12);
            os << path << ": " << a.number << " != " << e.number
               << " (tol " << tol << ")";
            return os.str();
          }
          return {};
        }
        case JsonValue::Type::string:
          return a.string == e.string ? std::string{}
                                      : path + ": string mismatch";
        case JsonValue::Type::boolean:
          return a.boolean == e.boolean
                     ? std::string{}
                     : path + ": " + (a.boolean ? "true" : "false") +
                           " != " + (e.boolean ? "true" : "false");
        case JsonValue::Type::array: {
          if (a.array.size() != e.array.size()) {
            return path + ": array size " +
                   std::to_string(a.array.size()) + " != " +
                   std::to_string(e.array.size());
          }
          for (std::size_t i = 0; i < a.array.size(); ++i) {
            auto d = diff(a.array[i], e.array[i],
                          path + "[" + std::to_string(i) + "]");
            if (!d.empty()) return d;
          }
          return {};
        }
        case JsonValue::Type::object: {
          if (a.object.size() != e.object.size()) {
            return path + ": object size mismatch";
          }
          for (const auto& [key, ev] : e.object) {
            const JsonValue* av = a.find(key);
            if (av == nullptr) return path + ": missing key " + key;
            auto d = diff(*av, ev, path + "." + key);
            if (!d.empty()) return d;
          }
          return {};
        }
        case JsonValue::Type::null:
          return {};
      }
      return path + ": unhandled type";
    }
  };
  return Walker{rel_tol, abs_tol}.diff(actual, expected, "$");
}

}  // namespace ros::testkit
