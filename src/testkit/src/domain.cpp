#include "ros/testkit/domain.hpp"

#include <cmath>

#include "ros/common/units.hpp"

namespace ros::testkit {

using ros::common::kPi;
using ros::common::Rng;

Gen<ros::tag::LayoutParams> layout_params_gen() {
  return Gen<ros::tag::LayoutParams>([](Rng& rng) {
    ros::tag::LayoutParams p;
    p.n_bits = rng.uniform_int(2, 6);
    p.unit_spacing_lambda = rng.uniform(1.0, 2.0);
    p.design_hz = 79e9;
    return p;
  });
}

Gen<std::vector<bool>> bits_gen(int n_bits) {
  ROS_EXPECT(n_bits >= 1, "bits_gen needs at least one bit");
  return Gen<std::vector<bool>>([n_bits](Rng& rng) {
    std::vector<bool> bits(static_cast<std::size_t>(n_bits));
    bool any = false;
    for (std::size_t k = 0; k < bits.size(); ++k) {
      bits[k] = rng.bernoulli(0.5);
      any = any || bits[k];
    }
    if (!any) {
      bits[static_cast<std::size_t>(
          rng.uniform_int(0, n_bits - 1))] = true;
    }
    return bits;
  });
}

Gen<ros::tag::TagLayout> tag_layout_gen() {
  return Gen<ros::tag::TagLayout>([](Rng& rng) {
    const auto params = layout_params_gen()(rng);
    const auto bits = bits_gen(params.n_bits)(rng);
    return ros::tag::TagLayout::from_bits(bits, params);
  });
}

Gen<ros::antenna::PsvaaStack::Params> stack_params_gen(int max_units) {
  ROS_EXPECT(max_units >= 1, "stack_params_gen needs max_units >= 1");
  return Gen<ros::antenna::PsvaaStack::Params>([max_units](Rng& rng) {
    ros::antenna::PsvaaStack::Params p;
    p.n_units = rng.uniform_int(1, max_units);
    p.height_per_extension = rng.uniform(0.0, 1.0);
    if (rng.bernoulli(0.6)) {
      p.phase_weights_rad.resize(static_cast<std::size_t>(p.n_units));
      for (auto& w : p.phase_weights_rad) {
        w = rng.uniform(0.0, 2.0 * kPi);
      }
    }
    p.unit.switching = rng.bernoulli(0.8);
    return p;
  });
}

Gen<ros::radar::FmcwChirp> fmcw_chirp_gen() {
  return Gen<ros::radar::FmcwChirp>([](Rng& rng) {
    ros::radar::FmcwChirp c;
    c.slope_hz_per_s = rng.uniform(20e12, 100e12);
    c.sample_rate_hz = rng.uniform(2e6, 10e6);
    c.n_samples = 1 << rng.uniform_int(6, 9);  // 64..512 per chirp
    c.start_hz = rng.uniform(76e9, 78e9);
    c.frame_rate_hz = rng.uniform(100.0, 2000.0);
    return c;
  });
}

Gen<ros::scene::ClutterObject::Params> clutter_gen() {
  return Gen<ros::scene::ClutterObject::Params>([](Rng& rng) {
    const ros::scene::Vec2 pos{rng.uniform(-6.0, 6.0),
                               rng.uniform(-1.0, 2.0)};
    ros::scene::ClutterObject::Params p;
    switch (rng.uniform_int(0, 5)) {
      case 0: p = ros::scene::tripod_params(pos); break;
      case 1: p = ros::scene::parking_meter_params(pos); break;
      case 2: p = ros::scene::street_lamp_params(pos); break;
      case 3: p = ros::scene::road_sign_params(pos); break;
      case 4: p = ros::scene::pedestrian_params(pos); break;
      default: p = ros::scene::tree_params(pos); break;
    }
    p.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
    return p;
  });
}

Gen<BlobCloud> blob_cloud_gen(int max_blobs, int max_points_per_blob,
                              int max_noise_points) {
  ROS_EXPECT(max_blobs >= 1 && max_points_per_blob >= 1,
             "blob_cloud_gen needs at least one blob and point");
  return Gen<BlobCloud>([max_blobs, max_points_per_blob,
                         max_noise_points](Rng& rng) {
    BlobCloud cloud;
    cloud.n_blobs = rng.uniform_int(1, max_blobs);
    cloud.blob_sigma_m = rng.uniform(0.02, 0.08);
    // Centers on a coarse jittered grid so blobs stay separated by
    // several DBSCAN radii and the expected partition is unambiguous.
    for (int b = 0; b < cloud.n_blobs; ++b) {
      const ros::scene::Vec2 center{3.0 * b + rng.uniform(-0.4, 0.4),
                                    rng.uniform(-0.4, 0.4)};
      const int n = rng.uniform_int(8, max_points_per_blob);
      for (int i = 0; i < n; ++i) {
        cloud.points.push_back(
            {center.x + rng.normal(0.0, cloud.blob_sigma_m),
             center.y + rng.normal(0.0, cloud.blob_sigma_m)});
      }
    }
    // Background noise, far off the blob row.
    const int n_noise = rng.uniform_int(0, max_noise_points);
    for (int i = 0; i < n_noise; ++i) {
      cloud.points.push_back({rng.uniform(-2.0, 3.0 * max_blobs),
                              rng.uniform(4.0, 8.0)});
    }
    return cloud;
  });
}

}  // namespace ros::testkit
