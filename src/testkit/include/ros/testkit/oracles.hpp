// Invariant oracles over pipeline outputs (ros::testkit).
//
// These encode what must hold for EVERY valid scenario, independent of
// the specific scene: finiteness of every reported number, funnel
// consistency, payload-width agreement, sample-domain bounds. roztest
// runs them on fuzzed scenarios; the golden-report test reuses the JSON
// serializer; property suites reuse individual checks.
#pragma once

#include <cstdint>
#include <string>

#include "ros/obs/json_parse.hpp"
#include "ros/pipeline/interrogator.hpp"
#include "ros/testkit/scenario.hpp"

namespace ros::testkit {

struct OracleVerdict {
  bool ok = true;
  std::string failure;  ///< first violated invariant, human-readable

  static OracleVerdict pass() { return {}; }
  static OracleVerdict fail(std::string why) {
    return {false, std::move(why)};
  }
};

/// Invariants of a full Interrogator::run report.
OracleVerdict check_report_invariants(
    const ros::pipeline::InterrogationReport& report, const Scenario& s);

/// Invariants of a decode_drive result.
OracleVerdict check_decode_invariants(
    const ros::pipeline::DecodeDriveResult& result, const Scenario& s);

/// Bucketized behavior signature for coverage-guided fuzzing: two runs
/// land in the same bucket iff they exercised the same funnel shape,
/// decode outcome, and coarse signal regime. New signature = the input
/// reached behavior the corpus had not covered yet.
std::uint64_t behavior_signature(
    const ros::pipeline::InterrogationReport& report, const Scenario& s);
std::uint64_t behavior_signature(
    const ros::pipeline::DecodeDriveResult& result, const Scenario& s);

/// Deterministic JSON view of a report: physics and funnel numbers
/// only, no wall-clock timings, so two runs of the same scenario
/// serialize byte-identically and the golden diff is meaningful.
std::string report_to_json(const ros::pipeline::InterrogationReport& report);

/// Recursive numeric comparison of two parsed JSON documents. Numbers
/// match within max(abs_tol, rel_tol * |expected|); strings, bools and
/// container shapes must match exactly. Returns an empty string on
/// match, else the path and values of the first mismatch.
std::string json_numeric_diff(const ros::obs::JsonValue& actual,
                              const ros::obs::JsonValue& expected,
                              double rel_tol, double abs_tol);

}  // namespace ros::testkit
