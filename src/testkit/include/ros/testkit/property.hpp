// GTest integration for ros::testkit properties.
//
// Use inside a TEST body:
//
//   ROS_PROPERTY("parseval holds", complex_signal_gen(),
//                [](const std::vector<cplx>& x) { return parseval(x); });
//
// On failure the test reports the (shrunk) counterexample plus the
// reproduction recipe:
//
//   ROS_PROPERTY_SEED=<seed> ctest -R <test> --output-on-failure
//
// The property (last macro argument, so lambdas with commas survive
// preprocessing) returns bool or std::string -- see check.hpp.
#pragma once

#include <gtest/gtest.h>

#include "ros/testkit/check.hpp"

#define ROS_PROPERTY_CFG(name, cfg, gen, ...)                              \
  do {                                                                     \
    const ::ros::testkit::PropertyResult ros_testkit_result_ =             \
        ::ros::testkit::check_property((name), (gen), __VA_ARGS__, (cfg)); \
    if (!ros_testkit_result_.ok) {                                         \
      ADD_FAILURE() << ::ros::testkit::failure_message(                    \
          (name), ros_testkit_result_);                                    \
    }                                                                      \
  } while (false)

/// Default config: 200 cases (ROS_PROPERTY_CASES overrides).
#define ROS_PROPERTY(name, gen, ...) \
  ROS_PROPERTY_CFG(name, ::ros::testkit::PropertyConfig{}, gen, __VA_ARGS__)

/// Explicit case count for unusually cheap or expensive properties.
#define ROS_PROPERTY_N(name, n_cases, gen, ...)                        \
  ROS_PROPERTY_CFG(name,                                               \
                   (::ros::testkit::PropertyConfig{.cases = (n_cases)}), \
                   gen, __VA_ARGS__)
