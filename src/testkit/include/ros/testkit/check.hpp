// Property-check harness core (ros::testkit), GTest-free.
//
// check_property draws `cases` values from a Gen, evaluates the property
// on each, and on the first failure shrinks the counterexample (see
// shrink.hpp) before reporting. Case i uses the RNG stream
// derive_stream_seed(run_seed, i): a failure report prints (run_seed,
// case) and `ROS_PROPERTY_SEED=<run_seed> ROS_PROPERTY_CASES=...`
// reproduces it exactly, independent of every other case.
//
// Properties are callables over the generated value returning either
//   * bool            -- true = holds, or
//   * std::string     -- empty = holds, non-empty = failure detail.
// A thrown exception counts as a failure with the exception text as the
// detail (and shrinking continues through throwing candidates).
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ros/common/random.hpp"
#include "ros/testkit/gen.hpp"
#include "ros/testkit/shrink.hpp"

namespace ros::testkit {

struct PropertyConfig {
  /// Generated cases per property. The ROS_PROPERTY_CASES environment
  /// variable overrides this globally (soak runs, quick smokes).
  int cases = 200;
  /// Run seed; 0 resolves to ROS_PROPERTY_SEED or the built-in default.
  std::uint64_t seed = 0;
  /// Budget of candidate evaluations during shrinking.
  int max_shrink_steps = 400;
};

/// cfg_seed if non-zero, else ROS_PROPERTY_SEED (decimal or 0x hex),
/// else the built-in default seed.
std::uint64_t resolve_run_seed(std::uint64_t cfg_seed);

/// ROS_PROPERTY_CASES override when set and positive, else cfg_cases.
int resolve_cases(int cfg_cases);

struct PropertyResult {
  bool ok = true;
  int cases_run = 0;
  std::uint64_t run_seed = 0;
  std::uint64_t failing_case = 0;
  int shrink_steps = 0;
  std::string counterexample;  ///< printed (possibly shrunk) value
  std::string original;        ///< printed pre-shrink failing value
  std::string note;            ///< property detail or exception text
};

/// Multi-line failure report with the reproduction recipe.
std::string failure_message(const char* name, const PropertyResult& r);

namespace detail {

template <typename T, typename = void>
struct is_streamable : std::false_type {};
template <typename T>
struct is_streamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                             << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
void show_value(std::ostream& os, const T& v);

template <typename T>
void show_sequence(std::ostream& os, const T& v) {
  os << "[";
  std::size_t i = 0;
  for (const auto& e : v) {
    if (i++ > 0) os << ", ";
    if (i > 32) {
      os << "... (" << v.size() << " elements)";
      break;
    }
    show_value(os, e);
  }
  os << "]";
}

template <typename T>
void show_value(std::ostream& os, const T& v) {
  if constexpr (std::is_same_v<T, bool>) {
    os << (v ? "true" : "false");
  } else if constexpr (is_streamable<T>::value) {
    os << v;
  } else if constexpr (requires { v.begin(); v.end(); v.size(); }) {
    show_sequence(os, v);
  } else {
    os << "<value of " << sizeof(T) << " bytes; add operator<< to print>";
  }
}

template <typename A, typename B>
void show_value(std::ostream& os, const std::pair<A, B>& v) {
  os << "(";
  show_value(os, v.first);
  os << ", ";
  show_value(os, v.second);
  os << ")";
}

template <typename... Ts>
void show_value(std::ostream& os, const std::tuple<Ts...>& v) {
  os << "(";
  std::size_t i = 0;
  std::apply(
      [&](const auto&... e) {
        ((os << (i++ > 0 ? ", " : ""), show_value(os, e)), ...);
      },
      v);
  os << ")";
}

// std::vector<bool>'s proxy reference confuses the generic sequence
// printer; special-case it as a bit string.
inline void show_value(std::ostream& os, const std::vector<bool>& v) {
  os << "bits\"";
  for (bool b : v) os << (b ? '1' : '0');
  os << "\"";
}

/// Evaluate a property on one value: {holds, detail}.
template <typename Prop, typename T>
std::pair<bool, std::string> eval_property(const Prop& prop, const T& v) {
  try {
    using R = std::decay_t<decltype(prop(v))>;
    if constexpr (std::is_same_v<R, std::string>) {
      std::string detail = prop(v);
      return {detail.empty(), std::move(detail)};
    } else {
      static_assert(std::is_convertible_v<R, bool>,
                    "a property must return bool or std::string");
      return {static_cast<bool>(prop(v)), std::string{}};
    }
  } catch (const std::exception& e) {
    return {false, std::string("threw: ") + e.what()};
  } catch (...) {
    return {false, "threw a non-std exception"};
  }
}

}  // namespace detail

template <typename T>
std::string show(const T& v) {
  std::ostringstream os;
  detail::show_value(os, v);
  return os.str();
}

template <typename T, typename Prop>
PropertyResult check_property(const char* /*name*/, const Gen<T>& gen,
                              Prop&& prop, PropertyConfig cfg = {}) {
  PropertyResult result;
  result.run_seed = resolve_run_seed(cfg.seed);
  const int cases = resolve_cases(cfg.cases);

  for (int i = 0; i < cases; ++i) {
    ros::common::Rng rng(ros::common::derive_stream_seed(
        result.run_seed, static_cast<std::uint64_t>(i)));
    // optional<> so T need not be default-constructible (domain types
    // like TagLayout only build through factories).
    std::optional<T> value;
    try {
      value.emplace(gen(rng));
    } catch (const std::exception& e) {
      // A generator that cannot produce a value is a failure of the
      // test's domain model, reported with the same reproduction seed.
      result.ok = false;
      result.failing_case = static_cast<std::uint64_t>(i);
      result.counterexample = "<generator failed>";
      result.note = std::string("generator threw: ") + e.what();
      ++result.cases_run;
      return result;
    }
    auto [ok, note] = detail::eval_property(prop, *value);
    ++result.cases_run;
    if (ok) continue;

    result.ok = false;
    result.failing_case = static_cast<std::uint64_t>(i);
    result.original = show(*value);
    result.note = std::move(note);

    // Greedy shrink: restart the candidate walk from every improvement.
    int steps = 0;
    bool improved = true;
    while (improved && steps < cfg.max_shrink_steps) {
      improved = false;
      for (const T& cand : Shrinker<T>::candidates(*value)) {
        if (++steps > cfg.max_shrink_steps) break;
        auto [cand_ok, cand_note] = detail::eval_property(prop, cand);
        if (!cand_ok) {
          value = cand;
          result.note = std::move(cand_note);
          improved = true;
          break;
        }
      }
    }
    result.shrink_steps = steps;
    result.counterexample = show(*value);
    return result;
  }
  return result;
}

}  // namespace ros::testkit
