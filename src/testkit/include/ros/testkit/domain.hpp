// Domain generators for the repro's core types (ros::testkit).
//
// Each generator honors the corresponding design rules from the paper
// (Secs. 4-6), so properties quantify over *valid* tags, stacks, chirps
// and scenes -- the harness should falsify physics invariants, not
// precondition checks. Deliberately-invalid inputs are exercised by the
// dedicated degenerate-input regression tests instead.
#pragma once

#include "ros/antenna/stack.hpp"
#include "ros/radar/chirp.hpp"
#include "ros/scene/geometry.hpp"
#include "ros/scene/objects.hpp"
#include "ros/tag/layout.hpp"
#include "ros/testkit/gen.hpp"

namespace ros::testkit {

/// Layout families in the practical range: 2-6 bits, delta_c in
/// [1.0, 2.0] lambda, the automotive design frequency.
Gen<ros::tag::LayoutParams> layout_params_gen();

/// Non-all-zero payload of width `n_bits` (all-zero tags are
/// undecodable by construction: no coding peak exists).
Gen<std::vector<bool>> bits_gen(int n_bits);

/// A full TagLayout: random family params + random payload.
Gen<ros::tag::TagLayout> tag_layout_gen();

/// PSVAA stack parameters honoring the design rules: 1..max_units
/// units, non-negative phase weights in [0, 2 pi), height growth
/// fraction in [0, 1].
Gen<ros::antenna::PsvaaStack::Params> stack_params_gen(int max_units = 12);

/// FMCW chirp configs around the TI IWR1443 operating point: slope,
/// ADC rate, samples per chirp and frame rate all within the ranges the
/// automotive band supports.
Gen<ros::radar::FmcwChirp> fmcw_chirp_gen();

/// One of the paper's six clutter classes (Fig. 13) at a position in
/// the roadside band x in [-6, 6], y in [-1, 2].
Gen<ros::scene::ClutterObject::Params> clutter_gen();

/// Gaussian blob clouds for clustering properties: n_blobs well-spread
/// centers with per-blob points, plus sparse background noise points.
struct BlobCloud {
  std::vector<ros::scene::Vec2> points;
  int n_blobs = 0;
  double blob_sigma_m = 0.05;
};
Gen<BlobCloud> blob_cloud_gen(int max_blobs = 4, int max_points_per_blob = 40,
                              int max_noise_points = 12);

}  // namespace ros::testkit
