// Fuzzable interrogation scenarios (ros::testkit).
//
// A Scenario is a flat, text-serializable description of one drive-by:
// tag payload + hardware, drive geometry, weather, interference, and
// clutter. The fuzzer (roztest) mutates scenarios byte- and field-wise;
// sanitize() then clamps every field into the envelope the pipeline is
// specified for, so ANY mutated file still denotes a valid experiment
// and every failure an oracle reports is a genuine model bug rather
// than a violated precondition.
//
// The text encoding is line-oriented `key = value` (clutter entries as
// `clutter = <class> <x> <y>`), chosen over a binary blob so corpus
// files double as human-readable regression descriptions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ros/common/random.hpp"
#include "ros/em/material.hpp"
#include "ros/pipeline/interrogator.hpp"
#include "ros/scene/scene.hpp"
#include "ros/scene/trajectory.hpp"

namespace ros::testkit {

struct ClutterSpec {
  int cls = 0;  ///< 0 tripod, 1 parking meter, 2 street lamp, 3 road
                ///< sign, 4 pedestrian, 5 tree
  double x = 1.3;
  double y = 0.4;
};

struct Scenario {
  int n_bits = 4;
  std::uint32_t bits = 0b1011;  ///< LSB = coding slot 1
  int psvaas_per_stack = 16;
  bool beam_shaped = true;
  double lane_offset_m = 3.0;
  double speed_mps = 2.0;
  double span_m = 5.0;  ///< drive from -span/2 to +span/2
  int frame_stride = 10;
  int weather = 0;  ///< ros::scene::Weather index 0..3
  double extra_noise_dbm = -300.0;
  double relative_drift = 0.0;
  double jitter_std_m = 0.0;
  double decode_fov_rad = 0.0;
  std::uint64_t noise_seed = 1;
  bool ground_bounce = false;
  double ground_reflection = 0.12;
  std::vector<ClutterSpec> clutter;

  /// Clamp every field into the supported envelope (see the .cpp for
  /// the exact ranges). Idempotent; called by parse() and mutate().
  void sanitize();

  /// Payload as the decoder-facing bit vector (slot 1 first).
  std::vector<bool> bit_vector() const;

  /// Frames the drive will synthesize (bounds the cost of one run).
  std::size_t n_frames() const;

  std::string encode() const;

  /// Lenient parse: unknown keys are ignored, malformed values keep the
  /// default, and the result is sanitize()d -- mutation-safe by design.
  static Scenario parse(std::string_view text);

  ros::scene::Scene make_scene(
      const ros::em::StriplineStackup* stackup) const;
  ros::scene::StraightDrive make_drive() const;
  ros::pipeline::InterrogatorConfig make_config() const;
};

/// Apply 1-3 random field mutations and re-sanitize. Pure in (s, rng).
Scenario mutate(const Scenario& s, ros::common::Rng& rng);

}  // namespace ros::testkit
