// Counterexample shrinking (ros::testkit).
//
// Shrinker<T>::candidates(v) proposes strictly "smaller" variants of a
// failing value, most aggressive first. The harness greedily walks this
// lattice: whenever a candidate still fails the property it becomes the
// new counterexample, until no candidate fails or the step budget runs
// out. Scalars halve toward zero; containers drop halves, then single
// elements, then shrink elements in place. Domain types without a
// specialization simply don't shrink -- the original failing value is
// still reported with its reproduction seed.
#pragma once

#include <cmath>
#include <cstddef>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace ros::testkit {

template <typename T, typename Enable = void>
struct Shrinker {
  static std::vector<T> candidates(const T&) { return {}; }
};

template <typename T>
struct Shrinker<T, std::enable_if_t<std::is_integral_v<T> &&
                                    !std::is_same_v<T, bool>>> {
  static std::vector<T> candidates(const T& v) {
    std::vector<T> out;
    if (v == T{0}) return out;
    out.push_back(T{0});
    const T half = static_cast<T>(v / 2);
    if (half != T{0}) out.push_back(half);
    const T step = static_cast<T>(v > T{0} ? v - 1 : v + 1);
    if (step != half && step != T{0}) out.push_back(step);
    return out;
  }
};

template <>
struct Shrinker<bool> {
  static std::vector<bool> candidates(const bool& v) {
    return v ? std::vector<bool>{false} : std::vector<bool>{};
  }
};

template <typename T>
struct Shrinker<T, std::enable_if_t<std::is_floating_point_v<T>>> {
  static std::vector<T> candidates(const T& v) {
    std::vector<T> out;
    if (!std::isfinite(v) || v == T{0}) return out;
    out.push_back(T{0});
    out.push_back(v / 2);
    const T trunc = std::trunc(v);
    if (trunc != v && trunc != v / 2) out.push_back(trunc);
    return out;
  }
};

template <typename T>
struct Shrinker<std::vector<T>> {
  static std::vector<std::vector<T>> candidates(const std::vector<T>& v) {
    std::vector<std::vector<T>> out;
    if (v.empty()) return out;
    out.emplace_back();  // the empty vector
    const std::size_t n = v.size();
    if (n >= 2) {
      out.emplace_back(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(
                                                  n / 2));  // first half
      out.emplace_back(v.begin() + static_cast<std::ptrdiff_t>(n / 2),
                       v.end());  // second half
    }
    // Drop single elements at up to 8 evenly spaced positions.
    const std::size_t stride = n <= 8 ? 1 : n / 8;
    for (std::size_t i = 0; i < n; i += stride) {
      std::vector<T> smaller = v;
      smaller.erase(smaller.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(smaller));
    }
    // Shrink elements in place (same positions as above).
    for (std::size_t i = 0; i < n; i += stride) {
      for (const T& cand : Shrinker<T>::candidates(v[i])) {
        std::vector<T> tweaked = v;
        tweaked[i] = cand;
        out.push_back(std::move(tweaked));
      }
    }
    return out;
  }
};

template <typename A, typename B>
struct Shrinker<std::pair<A, B>> {
  static std::vector<std::pair<A, B>> candidates(const std::pair<A, B>& v) {
    std::vector<std::pair<A, B>> out;
    for (const A& a : Shrinker<A>::candidates(v.first)) {
      out.emplace_back(a, v.second);
    }
    for (const B& b : Shrinker<B>::candidates(v.second)) {
      out.emplace_back(v.first, b);
    }
    return out;
  }
};

template <typename... Ts>
struct Shrinker<std::tuple<Ts...>> {
  using Tuple = std::tuple<Ts...>;

  static std::vector<Tuple> candidates(const Tuple& v) {
    std::vector<Tuple> out;
    shrink_each(v, out, std::index_sequence_for<Ts...>{});
    return out;
  }

 private:
  template <std::size_t... Is>
  static void shrink_each(const Tuple& v, std::vector<Tuple>& out,
                          std::index_sequence<Is...>) {
    (shrink_one<Is>(v, out), ...);
  }

  template <std::size_t I>
  static void shrink_one(const Tuple& v, std::vector<Tuple>& out) {
    using E = std::tuple_element_t<I, Tuple>;
    for (const E& cand : Shrinker<E>::candidates(std::get<I>(v))) {
      Tuple tweaked = v;
      std::get<I>(tweaked) = cand;
      out.push_back(std::move(tweaked));
    }
  }
};

}  // namespace ros::testkit
