// Typed random-value generators (ros::testkit).
//
// A Gen<T> is a pure function Rng -> T. Every draw comes from an
// explicit ros::common::Rng, and the property harness gives case i the
// counter-derived stream derive_stream_seed(run_seed, i), so any failing
// case replays bit-for-bit from the printed (seed, case) pair -- the
// same discipline the parallel pipeline uses for frame noise.
//
// Combinators compose by value: generators are cheap to copy (one
// std::function) and never share mutable state, so a Gen built once can
// be drawn from by many properties or threads as long as each caller
// owns its Rng.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "ros/common/expect.hpp"
#include "ros/common/random.hpp"

namespace ros::testkit {

template <typename T>
class Gen {
 public:
  using value_type = T;
  using Fn = std::function<T(ros::common::Rng&)>;

  explicit Gen(Fn fn) : fn_(std::move(fn)) {
    ROS_EXPECT(static_cast<bool>(fn_), "Gen needs a callable");
  }

  T operator()(ros::common::Rng& rng) const { return fn_(rng); }

  /// Apply `f` to every generated value.
  template <typename F>
  auto map(F f) const {
    using U = std::decay_t<decltype(f(std::declval<T>()))>;
    Fn self = fn_;
    return Gen<U>([self, f](ros::common::Rng& rng) { return f(self(rng)); });
  }

  /// Monadic bind: generate a T, then generate from the Gen `f` returns.
  template <typename F>
  auto and_then(F f) const {
    using G = std::decay_t<decltype(f(std::declval<T>()))>;
    using U = typename G::value_type;
    Fn self = fn_;
    return Gen<U>([self, f](ros::common::Rng& rng) {
      return f(self(rng))(rng);
    });
  }

  /// Rejection-sample until `pred` holds. Throws after `max_tries`
  /// consecutive misses -- a generator whose filter almost never passes
  /// is a bug in the test, not a reason to spin forever.
  template <typename Pred>
  Gen<T> filter(Pred pred, int max_tries = 100) const {
    Fn self = fn_;
    return Gen<T>([self, pred, max_tries](ros::common::Rng& rng) {
      for (int i = 0; i < max_tries; ++i) {
        T v = self(rng);
        if (pred(v)) return v;
      }
      throw std::runtime_error(
          "Gen::filter: no value passed the predicate in " +
          std::to_string(max_tries) + " tries");
    });
  }

 private:
  Fn fn_;
};

/// Uniform double in [lo, hi).
inline Gen<double> uniform(double lo, double hi) {
  ROS_EXPECT(lo <= hi, "uniform needs lo <= hi");
  return Gen<double>(
      [lo, hi](ros::common::Rng& rng) { return rng.uniform(lo, hi); });
}

/// Log-uniform double in [lo, hi); both bounds must be positive. Right
/// for physical scales spanning decades (distances, powers).
Gen<double> log_uniform(double lo, double hi);

/// Uniform integer in [lo, hi] inclusive.
inline Gen<int> uniform_int(int lo, int hi) {
  ROS_EXPECT(lo <= hi, "uniform_int needs lo <= hi");
  return Gen<int>(
      [lo, hi](ros::common::Rng& rng) { return rng.uniform_int(lo, hi); });
}

/// Bernoulli bool, true with probability `p_true`.
inline Gen<bool> boolean(double p_true = 0.5) {
  return Gen<bool>(
      [p_true](ros::common::Rng& rng) { return rng.bernoulli(p_true); });
}

template <typename T>
Gen<T> constant(T v) {
  return Gen<T>([v](ros::common::Rng&) { return v; });
}

/// One of the given values, uniformly.
template <typename T>
Gen<T> element_of(std::vector<T> items) {
  ROS_EXPECT(!items.empty(), "element_of needs at least one item");
  return Gen<T>([items = std::move(items)](ros::common::Rng& rng) {
    return items[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(items.size()) - 1))];
  });
}

/// One of the given generators, uniformly.
template <typename T>
Gen<T> one_of(std::vector<Gen<T>> alts) {
  ROS_EXPECT(!alts.empty(), "one_of needs at least one alternative");
  return Gen<T>([alts = std::move(alts)](ros::common::Rng& rng) {
    return alts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(alts.size()) - 1))](rng);
  });
}

/// Weighted choice between generators; weights need not sum to one.
template <typename T>
Gen<T> frequency(std::vector<std::pair<double, Gen<T>>> weighted) {
  ROS_EXPECT(!weighted.empty(), "frequency needs at least one alternative");
  double total = 0.0;
  for (const auto& [w, g] : weighted) {
    ROS_EXPECT(w >= 0.0, "frequency weights must be non-negative");
    total += w;
  }
  ROS_EXPECT(total > 0.0, "frequency needs a positive total weight");
  return Gen<T>(
      [weighted = std::move(weighted), total](ros::common::Rng& rng) {
        double x = rng.uniform(0.0, total);
        for (const auto& [w, g] : weighted) {
          if (x < w) return g(rng);
          x -= w;
        }
        return weighted.back().second(rng);  // float round-off fallback
      });
}

/// Vector whose size is uniform in [min_size, max_size] and whose
/// elements come from `item`.
template <typename T>
Gen<std::vector<T>> vector_of(Gen<T> item, int min_size, int max_size) {
  ROS_EXPECT(0 <= min_size && min_size <= max_size,
             "vector_of needs 0 <= min_size <= max_size");
  return Gen<std::vector<T>>(
      [item = std::move(item), min_size, max_size](ros::common::Rng& rng) {
        const int n = rng.uniform_int(min_size, max_size);
        std::vector<T> out;
        out.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) out.push_back(item(rng));
        return out;
      });
}

/// Fixed-size vector.
template <typename T>
Gen<std::vector<T>> vector_of(Gen<T> item, int size) {
  return vector_of(std::move(item), size, size);
}

template <typename A, typename B>
Gen<std::pair<A, B>> pair_of(Gen<A> a, Gen<B> b) {
  return Gen<std::pair<A, B>>(
      [a = std::move(a), b = std::move(b)](ros::common::Rng& rng) {
        // Braced init guarantees left-to-right draw order, keeping the
        // stream layout stable under refactors.
        return std::pair<A, B>{a(rng), b(rng)};
      });
}

template <typename... Ts>
Gen<std::tuple<Ts...>> tuple_of(Gen<Ts>... gens) {
  return Gen<std::tuple<Ts...>>(
      [... gens = std::move(gens)](ros::common::Rng& rng) {
        return std::tuple<Ts...>{gens(rng)...};
      });
}

/// Random permutation of 0..n-1 (Fisher-Yates off the Rng engine).
Gen<std::vector<std::size_t>> permutation_of(std::size_t n);

}  // namespace ros::testkit
