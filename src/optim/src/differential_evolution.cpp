#include "ros/optim/differential_evolution.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <numeric>

#include "ros/common/expect.hpp"
#include "ros/common/random.hpp"
#include "ros/exec/thread_pool.hpp"
#include "ros/obs/log.hpp"
#include "ros/obs/metrics.hpp"
#include "ros/obs/timer.hpp"

namespace ros::optim {

using ros::common::Rng;

namespace {

/// Three distinct population indices, all different from `i`, drawn
/// without replacement: always exactly three uniform_int calls (the old
/// rejection-sampling do/while loops could spin arbitrarily long at
/// small populations), and the draw count is fixed, which keeps the
/// master RNG stream aligned regardless of which indices come up.
std::array<std::size_t, 3> pick_distinct3(Rng& rng, std::size_t np,
                                          std::size_t i) {
  std::array<std::size_t, 3> out{};
  std::array<std::size_t, 4> taken{};  // i + picks so far, kept sorted
  taken[0] = i;
  for (std::size_t k = 0; k < 3; ++k) {
    auto v = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(np - 2 - k)));
    // Map the draw from the shrunken range onto the indices not yet
    // taken: each exclusion at or below v shifts it up by one.
    for (std::size_t t = 0; t <= k; ++t) {
      if (v >= taken[t]) ++v;
    }
    out[k] = v;
    // Insert v into the sorted exclusion list.
    std::size_t pos = k + 1;
    while (pos > 0 && taken[pos - 1] > v) {
      taken[pos] = taken[pos - 1];
      --pos;
    }
    taken[pos] = v;
  }
  return out;
}

}  // namespace

DeResult minimize(const Objective& f, const std::vector<Bounds>& bounds,
                  const DeConfig& config) {
  ROS_EXPECT(static_cast<bool>(f), "objective must be callable");
  ROS_EXPECT(!bounds.empty(), "need at least one decision variable");
  ROS_EXPECT(config.population >= 4, "population must be >= 4");
  ROS_EXPECT(config.differential_weight >= 0.0 &&
                 config.differential_weight <= 2.0,
             "F must be in [0, 2]");
  ROS_EXPECT(config.crossover_rate >= 0.0 && config.crossover_rate <= 1.0,
             "CR must be in [0, 1]");
  for (const auto& b : bounds) {
    ROS_EXPECT(b.lo <= b.hi, "bounds must be ordered");
  }

  auto& reg = ros::obs::MetricsRegistry::global();
  ros::obs::ScopedTimer de_timer("optim.de.minimize", "optim",
                                 &reg.histogram("optim.de.minimize.ms"));
  reg.counter("optim.de.runs").inc();

  const std::size_t dim = bounds.size();
  const std::size_t np = config.population;
  Rng rng(config.seed);

  DeResult result;
  ROS_LOG_DEBUG("optim", "DE-GA started",
                ros::obs::kv("dim", dim),
                ros::obs::kv("population", np),
                ros::obs::kv("max_generations", config.max_generations));

  // Initialize the population uniformly inside the box. All vectors
  // are drawn from the master RNG in index order first, then scored
  // across the pool: the RNG stream never depends on evaluation
  // order or thread count.
  std::vector<std::vector<double>> pop(np, std::vector<double>(dim));
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      pop[i][d] = rng.uniform(bounds[d].lo, bounds[d].hi);
    }
  }
  std::vector<double> score = ros::exec::parallel_map<double>(
      np, [&](std::size_t i) { return f(pop[i]); });
  result.evaluations += np;

  auto best_idx = static_cast<std::size_t>(
      std::min_element(score.begin(), score.end()) - score.begin());
  double best = score[best_idx];
  double best_at_patience_start = best;
  std::size_t since_improvement = 0;

  // Generation-synchronous DE: draw every trial vector from the master
  // RNG in member order against the generation-start population, score
  // them all across the pool, then select. Serial (ROS_THREADS=1) and
  // parallel runs consume the identical RNG stream and produce the
  // identical trial sequence, so the whole search is bit-reproducible
  // at any thread count.
  std::vector<std::vector<double>> trials(np, std::vector<double>(dim));
  for (std::size_t gen = 0; gen < config.max_generations; ++gen) {
    for (std::size_t i = 0; i < np; ++i) {
      // Three distinct members different from i, without replacement.
      const auto [a, b, c] = pick_distinct3(rng, np, i);
      std::vector<double>& trial = trials[i];
      const auto forced =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(dim) - 1));
      for (std::size_t d = 0; d < dim; ++d) {
        if (d == forced || rng.bernoulli(config.crossover_rate)) {
          double v = pop[a][d] +
                     config.differential_weight * (pop[b][d] - pop[c][d]);
          trial[d] = std::clamp(v, bounds[d].lo, bounds[d].hi);
        } else {
          trial[d] = pop[i][d];
        }
      }
    }

    const std::vector<double> tscore = ros::exec::parallel_map<double>(
        np, [&](std::size_t i) { return f(trials[i]); });
    result.evaluations += np;

    for (std::size_t i = 0; i < np; ++i) {
      if (tscore[i] <= score[i]) {
        pop[i] = trials[i];
        score[i] = tscore[i];
        if (tscore[i] < best) {
          best = tscore[i];
          best_idx = i;
        }
      }
    }

    const double mean =
        std::accumulate(score.begin(), score.end(), 0.0) /
        static_cast<double>(np);
    result.history.push_back(best);
    result.mean_history.push_back(mean);
    ++result.generations;
    ROS_LOG_TRACE("optim", "DE-GA generation",
                  ros::obs::kv("gen", gen),
                  ros::obs::kv("best", best),
                  ros::obs::kv("mean", mean));

    // Convergence: no meaningful improvement across a patience window.
    ++since_improvement;
    if (best_at_patience_start - best > config.tolerance) {
      best_at_patience_start = best;
      since_improvement = 0;
    } else if (since_improvement >= config.patience) {
      result.converged_early = true;
      break;
    }
  }

  result.best = pop[best_idx];
  result.best_value = best;
  reg.counter("optim.de.generations").inc(result.generations);
  reg.counter("optim.de.evaluations").inc(result.evaluations);
  if (result.converged_early) reg.counter("optim.de.converged_early").inc();
  ROS_LOG_DEBUG("optim", "DE-GA finished",
                ros::obs::kv("generations", result.generations),
                ros::obs::kv("evaluations", result.evaluations),
                ros::obs::kv("best", result.best_value),
                ros::obs::kv("converged_early", result.converged_early));
  return result;
}

}  // namespace ros::optim
