#include "ros/optim/differential_evolution.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "ros/common/expect.hpp"
#include "ros/common/random.hpp"
#include "ros/obs/log.hpp"
#include "ros/obs/metrics.hpp"
#include "ros/obs/timer.hpp"

namespace ros::optim {

using ros::common::Rng;

DeResult minimize(const Objective& f, const std::vector<Bounds>& bounds,
                  const DeConfig& config) {
  ROS_EXPECT(static_cast<bool>(f), "objective must be callable");
  ROS_EXPECT(!bounds.empty(), "need at least one decision variable");
  ROS_EXPECT(config.population >= 4, "population must be >= 4");
  ROS_EXPECT(config.differential_weight >= 0.0 &&
                 config.differential_weight <= 2.0,
             "F must be in [0, 2]");
  ROS_EXPECT(config.crossover_rate >= 0.0 && config.crossover_rate <= 1.0,
             "CR must be in [0, 1]");
  for (const auto& b : bounds) {
    ROS_EXPECT(b.lo <= b.hi, "bounds must be ordered");
  }

  auto& reg = ros::obs::MetricsRegistry::global();
  ros::obs::ScopedTimer de_timer("optim.de.minimize", "optim",
                                 &reg.histogram("optim.de.minimize.ms"));
  reg.counter("optim.de.runs").inc();

  const std::size_t dim = bounds.size();
  const std::size_t np = config.population;
  Rng rng(config.seed);

  DeResult result;
  ROS_LOG_DEBUG("optim", "DE-GA started",
                ros::obs::kv("dim", dim),
                ros::obs::kv("population", np),
                ros::obs::kv("max_generations", config.max_generations));

  // Initialize the population uniformly inside the box.
  std::vector<std::vector<double>> pop(np, std::vector<double>(dim));
  std::vector<double> score(np);
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      pop[i][d] = rng.uniform(bounds[d].lo, bounds[d].hi);
    }
    score[i] = f(pop[i]);
    ++result.evaluations;
  }

  auto best_idx = static_cast<std::size_t>(
      std::min_element(score.begin(), score.end()) - score.begin());
  double best = score[best_idx];
  double best_at_patience_start = best;
  std::size_t since_improvement = 0;

  std::vector<double> trial(dim);
  for (std::size_t gen = 0; gen < config.max_generations; ++gen) {
    for (std::size_t i = 0; i < np; ++i) {
      // Pick three distinct members different from i.
      std::size_t a;
      std::size_t b;
      std::size_t c;
      do {
        a = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(np) - 1));
      } while (a == i);
      do {
        b = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(np) - 1));
      } while (b == i || b == a);
      do {
        c = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(np) - 1));
      } while (c == i || c == a || c == b);

      const auto forced =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(dim) - 1));
      for (std::size_t d = 0; d < dim; ++d) {
        if (d == forced || rng.bernoulli(config.crossover_rate)) {
          double v = pop[a][d] +
                     config.differential_weight * (pop[b][d] - pop[c][d]);
          trial[d] = std::clamp(v, bounds[d].lo, bounds[d].hi);
        } else {
          trial[d] = pop[i][d];
        }
      }

      const double t = f(trial);
      ++result.evaluations;
      if (t <= score[i]) {
        pop[i] = trial;
        score[i] = t;
        if (t < best) {
          best = t;
          best_idx = i;
        }
      }
    }

    const double mean =
        std::accumulate(score.begin(), score.end(), 0.0) /
        static_cast<double>(np);
    result.history.push_back(best);
    result.mean_history.push_back(mean);
    ++result.generations;
    ROS_LOG_TRACE("optim", "DE-GA generation",
                  ros::obs::kv("gen", gen),
                  ros::obs::kv("best", best),
                  ros::obs::kv("mean", mean));

    // Convergence: no meaningful improvement across a patience window.
    ++since_improvement;
    if (best_at_patience_start - best > config.tolerance) {
      best_at_patience_start = best;
      since_improvement = 0;
    } else if (since_improvement >= config.patience) {
      result.converged_early = true;
      break;
    }
  }

  result.best = pop[best_idx];
  result.best_value = best;
  reg.counter("optim.de.generations").inc(result.generations);
  reg.counter("optim.de.evaluations").inc(result.evaluations);
  if (result.converged_early) reg.counter("optim.de.converged_early").inc();
  ROS_LOG_DEBUG("optim", "DE-GA finished",
                ros::obs::kv("generations", result.generations),
                ros::obs::kv("evaluations", result.evaluations),
                ros::obs::kv("best", result.best_value),
                ros::obs::kv("converged_early", result.converged_early));
  return result;
}

}  // namespace ros::optim
