// Differential evolution (DE/rand/1/bin), Storn & Price 1997.
//
// The paper uses a "differential evolution genetic algorithm (DE-GA)" as
// the meta-optimizer that searches PSVAA phase weights and vertical
// positions for elevation beam shaping (Sec. 4.3), because the weight ->
// position -> phase dependencies have no closed form. We implement the
// classic rand/1/bin variant with bound clamping and use it both for beam
// shaping and as the stand-in for HFSS parametric sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace ros::optim {

/// Inclusive box bounds for one decision variable.
struct Bounds {
  double lo = 0.0;
  double hi = 1.0;
};

struct DeConfig {
  std::size_t population = 48;      ///< NP; >= 4
  double differential_weight = 0.7; ///< F in [0, 2]
  double crossover_rate = 0.9;      ///< CR in [0, 1]
  std::size_t max_generations = 300;
  double tolerance = 1e-10;         ///< stop when best improves less than
                                    ///< this over `patience` generations
  std::size_t patience = 60;
  std::uint64_t seed = 1;
};

struct DeResult {
  std::vector<double> best;        ///< best decision vector found
  double best_value = 0.0;         ///< objective at `best`
  std::size_t generations = 0;     ///< generations actually run
  std::size_t evaluations = 0;     ///< objective evaluations
  std::vector<double> history;     ///< best value per generation
  std::vector<double> mean_history;///< population-mean value per generation
  bool converged_early = false;    ///< stopped by the patience window
};

/// Objective to minimize. Evaluations are fanned out over the
/// ros::exec pool (sized by ROS_THREADS), so `f` must be safe to call
/// concurrently when ROS_THREADS > 1. `f` never observes the RNG.
using Objective = std::function<double(const std::vector<double>&)>;

/// Minimize `f` over the box given by `bounds`.
///
/// Generation-synchronous DE/rand/1/bin: each generation's trial
/// vectors are all drawn from the master RNG in member order against
/// the generation-start population, scored in parallel, then selected.
/// The search is deterministic for a given seed at every ROS_THREADS
/// setting (serial and parallel runs are bit-identical).
DeResult minimize(const Objective& f, const std::vector<Bounds>& bounds,
                  const DeConfig& config = {});

}  // namespace ros::optim
