// TDM MIMO virtual-array synthesis.
//
// The TI IWR1443's 8-element azimuth array (Sec. 3.2) is *virtual*: two
// Tx antennas fire on alternating chirps and each 4-element Rx capture
// is concatenated, with the second Tx displaced by a full Rx aperture.
// The catch: the second chirp happens T later, so a closing target adds
// a Doppler phase 2*pi*f_d*T across the array seam -- an AoA bias of
// several degrees at road speeds unless compensated with the measured
// Doppler. This module synthesizes the physical two-chirp process and
// the compensation, honoring what the rest of the library assumes when
// it uses an 8-channel array.
#pragma once

#include <span>

#include "ros/common/random.hpp"
#include "ros/radar/waveform.hpp"

namespace ros::radar {

struct TdmMimoConfig {
  int n_tx = 2;
  int n_rx_physical = 4;
  /// Time between the two Tx antennas' chirps [s].
  double tx_interval_s = 60e-6;
};

/// Synthesize the virtual n_tx * n_rx array cube from `returns` by
/// running one chirp per Tx. Tx m is displaced by m * n_rx * d (the
/// standard MIMO layout), and its chirp occurs m * tx_interval later, so
/// each return's Doppler advances its phase accordingly.
FrameCube synthesize_tdm_virtual(const FmcwChirp& chirp,
                                 const TdmMimoConfig& config,
                                 std::span<const ScatterReturn> returns,
                                 double noise_w, ros::common::Rng& rng);

/// Apply Doppler compensation in place: rotate the channels of Tx block
/// m by exp(-j * 2 pi * doppler_hz * m * tx_interval). `doppler_hz` is
/// the target's measured Doppler (from the range-Doppler map).
void compensate_tdm_doppler(FrameCube& virtual_cube,
                            const TdmMimoConfig& config, double doppler_hz);

}  // namespace ros::radar
