// Chirp-train Doppler processing.
//
// The paper (Sec. 7.3) argues Doppler shifts are negligible for the RCS
// pattern; this module makes that check quantitative and adds the
// standard range-Doppler capability an automotive radar has anyway: a
// slow-time FFT across a train of chirps, giving per-reflector radial
// velocity -- usable for ego-motion estimation (the self-tracking input
// of Sec. 6) from static roadside clutter.
#pragma once

#include <span>
#include <vector>

#include "ros/radar/processing.hpp"
#include "ros/radar/waveform.hpp"

namespace ros::radar {

struct ChirpTrain {
  int n_chirps = 32;
  /// Chirp-to-chirp interval [s] (the paper's frame duration is 60 us).
  double chirp_interval_s = 60e-6;

  /// Unambiguous radial velocity +/- lambda / (4 T) [m/s].
  double max_unambiguous_velocity(double hz) const;

  /// Velocity resolution lambda / (2 N T) [m/s].
  double velocity_resolution(double hz) const;
};

/// A coherently processed train: one range profile per chirp.
using TrainProfiles = std::vector<RangeProfile>;

/// Synthesize and range-compress a chirp train. Each return's Doppler
/// advances its carrier phase by 2*pi*f_d*T per chirp.
TrainProfiles synthesize_train(const WaveformSynthesizer& synth,
                               std::span<const ScatterReturn> returns,
                               const ChirpTrain& train, double noise_w,
                               ros::common::Rng& rng);

/// Range-Doppler power map from a train (Rx channel 0).
struct RangeDopplerMap {
  /// power[range_bin][doppler_bin], doppler fft-shifted (bin N/2 = 0).
  std::vector<std::vector<double>> power;
  double bin_spacing_m = 0.0;
  double velocity_per_bin = 0.0;  ///< m/s per doppler bin
  int n_chirps = 0;

  double velocity_of_bin(std::size_t doppler_bin) const;
  std::size_t n_range_bins() const { return power.size(); }
};

RangeDopplerMap range_doppler(const TrainProfiles& profiles,
                              const ChirpTrain& train, double hz);

/// Radial velocity of the strongest reflector near `range_m`
/// (parabola-refined over the Doppler axis).
double estimate_radial_velocity(const RangeDopplerMap& map, double range_m);

}  // namespace ros::radar
