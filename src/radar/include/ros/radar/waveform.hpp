// FMCW baseband waveform synthesis (paper Eq. 2).
//
// Each reflector visible to the radar contributes a dechirped complex
// tone at its beat frequency, with a carrier phase set by the round-trip
// range and a per-Rx-antenna phase set by its angle of arrival. Thermal
// noise is added per sample. This is the waveform-level substitute for
// the physical TI radar front end.
#pragma once

#include <span>
#include <vector>

#include "ros/common/random.hpp"
#include "ros/common/units.hpp"
#include "ros/radar/arrays.hpp"
#include "ros/radar/chirp.hpp"

namespace ros::radar {

using ros::common::cplx;

/// One reflector's contribution to a frame.
struct ScatterReturn {
  /// Received field amplitude at an Rx port [sqrt(W)]: |a|^2 is the
  /// received power of this return.
  double amplitude = 0.0;
  /// Carrier phase of the return [rad] (scattering phase; the range
  /// phase is added by the synthesizer).
  double phase_rad = 0.0;
  double range_m = 1.0;
  double azimuth_rad = 0.0;      ///< AoA in the radar frame
  double doppler_hz = 0.0;       ///< Doppler shift (positive = closing)
};

/// Raw ADC frame: [rx antenna][sample].
using FrameCube = std::vector<std::vector<cplx>>;

class WaveformSynthesizer {
 public:
  WaveformSynthesizer(FmcwChirp chirp, RadarArray array);

  const FmcwChirp& chirp() const { return chirp_; }
  const RadarArray& array() const { return array_; }

  /// Synthesize one frame from the given returns, adding circularly
  /// symmetric Gaussian noise of `noise_power_w` per sample.
  FrameCube synthesize(std::span<const ScatterReturn> returns,
                       double noise_power_w, ros::common::Rng& rng) const;

  /// Same, writing into `frame`. When `frame` already has the right
  /// shape (steady-state frame loops) no heap allocation happens; the
  /// cube is zeroed and refilled.
  void synthesize_into(std::span<const ScatterReturn> returns,
                       double noise_power_w, ros::common::Rng& rng,
                       FrameCube& frame) const;

 private:
  FmcwChirp chirp_;
  RadarArray array_;
};

}  // namespace ros::radar
