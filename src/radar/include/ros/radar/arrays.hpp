// Radar MIMO antenna configuration (paper Sec. 6 / 7.1).
//
// The TI board uses one "original"-polarization Tx for object detection,
// one 90-deg-rotated Tx for tag decoding, and 4 Rx antennas (beamwidth
// ~28.6 deg) whose lambda/2 baseline provides AoA estimation.
#pragma once

#include "ros/em/polarization.hpp"

namespace ros::radar {

struct RadarArray {
  /// Receive channels used for AoA processing. The TI IWR1443 runs TDM
  /// MIMO: 4 physical Rx x multiple Tx form a virtual array; the paper's
  /// Sec. 3.2 uses N_a = 8 (angle resolution 14.3 deg) for point-cloud
  /// generation, which is what object separation in Fig. 11b requires.
  int n_rx = 8;
  /// Rx element spacing; 0 = lambda/2 at 79 GHz.
  double rx_spacing_m = 0.0;
  /// Polarization of the Rx antennas (and the "original" Tx).
  ros::em::Polarization rx_pol = ros::em::Polarization::vertical;
  /// Azimuth field-of-view half angle of the radar antennas (~60 deg
  /// full FoV per the paper's Sec. 7.3 discussion).
  double fov_half_angle_rad = 0.7854;  // 45 deg
  /// Element pattern exponent for the Tx/Rx antennas (field ~ cos^q).
  double pattern_exponent = 1.0;

  static RadarArray ti_iwr1443();

  double rx_spacing(double hz) const;

  /// Rx beamwidth ~ lambda / (N * d) = 2/N rad (28.6 deg for N = 4).
  double beamwidth_rad() const;

  /// The "original" (co-polarized) Tx polarization.
  ros::em::Polarization tx_normal_pol() const { return rx_pol; }

  /// The polarization-switching Tx (rotated 90 deg, Sec. 7.1).
  ros::em::Polarization tx_switched_pol() const {
    return ros::em::orthogonal(rx_pol);
  }

  /// One-way antenna field taper at azimuth `az_rad` off boresight.
  double element_field(double az_rad) const;
};

/// Which Tx antenna a frame uses.
enum class TxMode {
  normal,    ///< co-polarized Tx: object detection pass
  switched,  ///< cross-polarized Tx: tag decoding pass
};

}  // namespace ros::radar
