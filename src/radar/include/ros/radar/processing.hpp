// FMCW signal processing: range FFT (Eq. 3), AoA beamforming pseudo-
// spectrum (Eq. 4), CFAR point extraction, and beamformed RSS sampling
// (the "spotlight" mechanism of Sec. 6).
#pragma once

#include <span>
#include <vector>

#include "ros/dsp/cfar.hpp"
#include "ros/dsp/window.hpp"
#include "ros/radar/arrays.hpp"
#include "ros/radar/chirp.hpp"
#include "ros/radar/waveform.hpp"

namespace ros::radar {

/// Range-compressed frame: complex bins per Rx antenna. The FFT is
/// normalized by 1/N (and the window's coherent gain), so a tone of
/// amplitude A appears as a bin of magnitude ~A: bin power == received
/// power.
struct RangeProfile {
  std::vector<std::vector<cplx>> bins;  ///< [rx][bin]
  double bin_spacing_m = 0.0;

  std::size_t n_bins() const { return bins.empty() ? 0 : bins[0].size(); }
  double range_of_bin(std::size_t b) const {
    return static_cast<double>(b) * bin_spacing_m;
  }
  std::size_t bin_of_range(double range_m) const;
};

/// Range FFT over each Rx channel (Eq. 3).
RangeProfile range_fft(const FrameCube& frame, const FmcwChirp& chirp,
                       ros::dsp::Window window = ros::dsp::Window::hann);

/// Range FFT writing into `out`, reusing its per-channel storage when
/// the shape matches (zero steady-state allocation for power-of-two
/// chirp lengths; windows are cached per thread).
void range_fft_into(const FrameCube& frame, const FmcwChirp& chirp,
                    ros::dsp::Window window, RangeProfile& out);

/// Coherent beamformer output at a range bin, steered to `az_rad`
/// (Eq. 4, normalized by the antenna count).
cplx beamform_bin(const RangeProfile& profile, std::size_t bin,
                  const RadarArray& array, double hz, double az_rad);

/// AoA pseudo-spectrum |S(d0, theta)|^2 over `angles` at a range bin.
std::vector<double> aoa_power_spectrum(const RangeProfile& profile,
                                       std::size_t bin,
                                       const RadarArray& array, double hz,
                                       std::span<const double> angles_rad);

/// Same, writing into a caller-provided span (no allocation; scratch
/// comes from the thread's arena). out.size() must equal
/// angles_rad.size().
void aoa_power_spectrum_into(const RangeProfile& profile, std::size_t bin,
                             const RadarArray& array, double hz,
                             std::span<const double> angles_rad,
                             std::span<double> out);

/// A detected point reflector.
struct Detection {
  double range_m = 0.0;
  double azimuth_rad = 0.0;
  double rss_dbm = 0.0;  ///< beamformed received power
  double snr_db = 0.0;   ///< CFAR SNR of the range cell
};

struct DetectorOptions {
  ros::dsp::CfarOptions cfar{};
  std::size_t n_angles = 181;       ///< AoA grid over the radar FoV
  double min_range_m = 0.5;         ///< ignore the DC/leakage region
  std::size_t max_aoa_peaks = 4;    ///< detections per range cell
  double aoa_peak_min_rel = 0.25;   ///< AoA peak floor vs cell maximum
};

/// Full point extraction: CFAR on the non-coherent range profile, then
/// AoA peaks per detected cell (the radar point cloud generator,
/// Sec. 3.2).
std::vector<Detection> detect_points(const RangeProfile& profile,
                                     const RadarArray& array, double hz,
                                     const DetectorOptions& opts = {});

/// Beamformed RSS [dBm] toward a known (range, azimuth): the Sec. 6
/// "spotlight" measurement used for RCS sampling. Searches +/-1 bin for
/// the strongest response.
double beamformed_rss_dbm(const RangeProfile& profile,
                          const RadarArray& array, double hz,
                          double range_m, double az_rad);

}  // namespace ros::radar
