// MUSIC super-resolution angle estimation.
//
// The TI radar's 8-element virtual array gives a 14.3-deg Rayleigh
// resolution (Sec. 3.2); the paper's Fig. 13 study places clutter within
// 0.5 m of the tag, where conventional beamforming merges the objects at
// a few metres' standoff. MUSIC (MUltiple SIgnal Classification) resolves
// closer sources from the same snapshot by splitting the spatial
// covariance into signal and noise subspaces. Because a single frame
// yields one snapshot, the covariance uses forward-backward spatial
// smoothing over subarrays, the standard fix for coherent sources.
#pragma once

#include <span>
#include <vector>

#include "ros/dsp/linalg.hpp"
#include "ros/radar/processing.hpp"

namespace ros::radar {

struct MusicOptions {
  int n_sources = 2;   ///< assumed signal-subspace dimension
  int subarray = 6;    ///< spatial-smoothing subarray length (< n_rx)
};

/// Forward-backward spatially smoothed covariance of one array snapshot
/// (the complex values across Rx channels at one range bin).
ros::dsp::cmat smoothed_covariance(std::span<const ros::common::cplx> snapshot,
                                   int subarray);

/// MUSIC pseudo-spectrum over `angles_rad` at range bin `bin`.
/// Larger = closer to a source direction.
std::vector<double> music_spectrum(const RangeProfile& profile,
                                   std::size_t bin, const RadarArray& array,
                                   double hz,
                                   std::span<const double> angles_rad,
                                   const MusicOptions& opts = {});

/// Convenience: the `n_sources` strongest MUSIC angle estimates [rad].
std::vector<double> music_aoa(const RangeProfile& profile, std::size_t bin,
                              const RadarArray& array, double hz,
                              const MusicOptions& opts = {},
                              std::size_t n_angles = 721);

}  // namespace ros::radar
