// FMCW chirp configuration (paper Sec. 3.2 and the TI IWR1443 defaults of
// Sec. 7.1: slope 66 MHz/us, 5 Msps, 256 samples/frame, 1 kHz frames).
#pragma once

namespace ros::radar {

struct FmcwChirp {
  double slope_hz_per_s = 66e12;     ///< chirp slope (66 MHz/us)
  double sample_rate_hz = 5e6;       ///< baseband ADC rate
  int n_samples = 256;               ///< samples per chirp
  double start_hz = 77e9;            ///< chirp start frequency
  double frame_rate_hz = 1000.0;     ///< F_s, frames per second

  /// The paper's TI IWR1443 configuration.
  static FmcwChirp ti_iwr1443();

  /// Time spanned by the sampled portion of the chirp [s].
  double sampled_duration_s() const;

  /// RF bandwidth swept during the sampled portion [Hz].
  double sampled_bandwidth_hz() const;

  /// Center frequency of the sampled sweep [Hz].
  double center_hz() const;

  /// Range resolution c / (2B) [m] (~3.75 cm at 4 GHz).
  double range_resolution_m() const;

  /// Maximum unambiguous range set by the ADC rate [m].
  double max_range_m() const;

  /// Beat frequency for a reflector at `range_m` [Hz].
  double beat_frequency_hz(double range_m) const;

  /// Range corresponding to a beat frequency [m].
  double range_for_beat_hz(double beat_hz) const;
};

}  // namespace ros::radar
