#include "ros/radar/chirp.hpp"

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::radar {

using ros::common::kSpeedOfLight;

FmcwChirp FmcwChirp::ti_iwr1443() { return {}; }

double FmcwChirp::sampled_duration_s() const {
  ROS_EXPECT(sample_rate_hz > 0.0 && n_samples > 0,
             "chirp sampling must be positive");
  return static_cast<double>(n_samples) / sample_rate_hz;
}

double FmcwChirp::sampled_bandwidth_hz() const {
  return slope_hz_per_s * sampled_duration_s();
}

double FmcwChirp::center_hz() const {
  return start_hz + sampled_bandwidth_hz() / 2.0;
}

double FmcwChirp::range_resolution_m() const {
  return kSpeedOfLight / (2.0 * sampled_bandwidth_hz());
}

double FmcwChirp::max_range_m() const {
  return sample_rate_hz * kSpeedOfLight / (2.0 * slope_hz_per_s);
}

double FmcwChirp::beat_frequency_hz(double range_m) const {
  ROS_EXPECT(range_m >= 0.0, "range must be non-negative");
  return 2.0 * slope_hz_per_s * range_m / kSpeedOfLight;
}

double FmcwChirp::range_for_beat_hz(double beat_hz) const {
  return beat_hz * kSpeedOfLight / (2.0 * slope_hz_per_s);
}

}  // namespace ros::radar
