#include "ros/radar/music.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/grid.hpp"
#include "ros/common/units.hpp"
#include "ros/dsp/peaks.hpp"

namespace ros::radar {

using namespace ros::common;
using ros::dsp::cmat;

cmat smoothed_covariance(std::span<const cplx> snapshot, int subarray) {
  const int n = static_cast<int>(snapshot.size());
  ROS_EXPECT(subarray >= 2, "subarray must be >= 2");
  ROS_EXPECT(subarray < n, "subarray must be smaller than the array");
  const int n_sub = n - subarray + 1;
  const auto m = static_cast<std::size_t>(subarray);

  cmat r = ros::dsp::zeros(m);
  // Forward subarrays.
  for (int s = 0; s < n_sub; ++s) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        r[i][j] += snapshot[static_cast<std::size_t>(s) + i] *
                   std::conj(snapshot[static_cast<std::size_t>(s) + j]);
      }
    }
  }
  // Backward (conjugate-reversed) subarrays.
  for (int s = 0; s < n_sub; ++s) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const auto bi = static_cast<std::size_t>(n - 1 - s) - i;
        const auto bj = static_cast<std::size_t>(n - 1 - s) - j;
        r[i][j] += std::conj(snapshot[bi]) * snapshot[bj];
      }
    }
  }
  const double norm = 1.0 / (2.0 * static_cast<double>(n_sub));
  for (auto& row : r) {
    for (auto& v : row) v *= norm;
  }
  return r;
}

std::vector<double> music_spectrum(const RangeProfile& profile,
                                   std::size_t bin, const RadarArray& array,
                                   double hz,
                                   std::span<const double> angles_rad,
                                   const MusicOptions& opts) {
  ROS_EXPECT(bin < profile.n_bins(), "bin out of range");
  ROS_EXPECT(opts.n_sources >= 1, "need at least one source");
  ROS_EXPECT(opts.subarray > opts.n_sources,
             "subarray must exceed the source count");

  std::vector<cplx> snapshot(profile.bins.size());
  for (std::size_t k = 0; k < snapshot.size(); ++k) {
    snapshot[k] = profile.bins[k][bin];
  }
  const cmat r = smoothed_covariance(snapshot, opts.subarray);
  const auto eig = ros::dsp::hermitian_eigen(r);

  const auto m = static_cast<std::size_t>(opts.subarray);
  const auto n_sig = static_cast<std::size_t>(opts.n_sources);
  const double d = array.rx_spacing(hz);
  const double lambda = wavelength(hz);

  std::vector<double> out(angles_rad.size());
  for (std::size_t a = 0; a < angles_rad.size(); ++a) {
    // Steering vector over the subarray.
    std::vector<cplx> sv(m);
    const double psi = 2.0 * kPi * d * std::sin(angles_rad[a]) / lambda;
    for (std::size_t i = 0; i < m; ++i) {
      sv[i] = std::polar(1.0 / std::sqrt(static_cast<double>(m)),
                         psi * static_cast<double>(i));
    }
    // 1 / sum over noise subspace of |e_k^H s|^2.
    double denom = 1e-12;
    for (std::size_t k = n_sig; k < m; ++k) {
      cplx dot{0.0, 0.0};
      for (std::size_t i = 0; i < m; ++i) {
        dot += std::conj(eig.vectors[i][k]) * sv[i];
      }
      denom += std::norm(dot);
    }
    out[a] = 1.0 / denom;
  }
  return out;
}

std::vector<double> music_aoa(const RangeProfile& profile, std::size_t bin,
                              const RadarArray& array, double hz,
                              const MusicOptions& opts,
                              std::size_t n_angles) {
  const auto angles = linspace(-array.fov_half_angle_rad,
                               array.fov_half_angle_rad, n_angles);
  const auto spec = music_spectrum(profile, bin, array, hz, angles, opts);
  ros::dsp::PeakOptions po;
  po.max_peaks = static_cast<std::size_t>(opts.n_sources);
  po.min_separation = 4;
  const auto peaks = ros::dsp::find_peaks(spec, po);
  const double step = angles[1] - angles[0];
  std::vector<double> out;
  out.reserve(peaks.size());
  for (const auto& p : peaks) {
    out.push_back(angles.front() + p.refined_index * step);
  }
  return out;
}

}  // namespace ros::radar
