#include "ros/radar/arrays.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::radar {

using ros::common::wavelength;

RadarArray RadarArray::ti_iwr1443() { return {}; }

double RadarArray::rx_spacing(double hz) const {
  return rx_spacing_m > 0.0 ? rx_spacing_m : wavelength(hz) / 2.0;
}

double RadarArray::beamwidth_rad() const {
  ROS_EXPECT(n_rx >= 1, "need at least one Rx antenna");
  return 2.0 / static_cast<double>(n_rx);
}

double RadarArray::element_field(double az_rad) const {
  if (std::abs(az_rad) > fov_half_angle_rad) return 0.0;
  const double c = std::cos(az_rad);
  if (c <= 0.0) return 0.0;
  return std::pow(c, pattern_exponent);
}

}  // namespace ros::radar
