#include "ros/radar/waveform.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/simd/simd.hpp"

namespace ros::radar {

using namespace ros::common;

WaveformSynthesizer::WaveformSynthesizer(FmcwChirp chirp, RadarArray array)
    : chirp_(chirp), array_(array) {
  ROS_EXPECT(chirp.n_samples > 0, "need at least one sample");
  ROS_EXPECT(array.n_rx > 0, "need at least one Rx antenna");
}

FrameCube WaveformSynthesizer::synthesize(
    std::span<const ScatterReturn> returns, double noise_power_w,
    Rng& rng) const {
  FrameCube frame;
  synthesize_into(returns, noise_power_w, rng, frame);
  return frame;
}

void WaveformSynthesizer::synthesize_into(
    std::span<const ScatterReturn> returns, double noise_power_w,
    Rng& rng, FrameCube& frame) const {
  ROS_EXPECT(noise_power_w >= 0.0, "noise power must be non-negative");
  const auto n_rx = static_cast<std::size_t>(array_.n_rx);
  const auto n_s = static_cast<std::size_t>(chirp_.n_samples);
  // Reuse the caller's storage when the shape already matches (the
  // frame-loop case); only a cold first call allocates.
  if (frame.size() != n_rx) frame.resize(n_rx);
  for (auto& chan : frame) chan.assign(n_s, cplx{0.0, 0.0});

  const double fc = chirp_.center_hz();
  const double lambda = kSpeedOfLight / fc;
  const double d_rx = array_.rx_spacing(fc);
  const double dt = 1.0 / chirp_.sample_rate_hz;
  const auto& tone = ros::simd::ops().tone_acc;

  for (const ScatterReturn& r : returns) {
    if (r.amplitude <= 0.0) continue;
    const double f_beat = chirp_.beat_frequency_hz(r.range_m) + r.doppler_hz;
    // Carrier phase from the round trip at the chirp start frequency
    // (Eq. 2's first phase term), plus the reflector's own phase.
    const double phi0 =
        -4.0 * kPi * r.range_m * chirp_.start_hz / kSpeedOfLight +
        r.phase_rad;
    const double sin_az = std::sin(r.azimuth_rad);
    // Per-sample phase advances linearly: one tone per (return, rx).
    const double dphase = 2.0 * kPi * f_beat * dt;
    for (std::size_t k = 0; k < n_rx; ++k) {
      // Eq. 2's second phase term: the inter-antenna delay.
      const double phi_ant =
          2.0 * kPi * static_cast<double>(k) * d_rx * sin_az / lambda;
      tone(frame[k].data(), r.amplitude, phi0 + phi_ant, dphase, n_s);
    }
  }

  if (noise_power_w > 0.0) {
    for (std::size_t k = 0; k < n_rx; ++k) {
      for (std::size_t i = 0; i < n_s; ++i) {
        frame[k][i] += rng.complex_gaussian(noise_power_w);
      }
    }
  }
}

}  // namespace ros::radar
