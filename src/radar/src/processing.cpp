#include "ros/radar/processing.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "ros/common/expect.hpp"
#include "ros/common/grid.hpp"
#include "ros/common/units.hpp"
#include "ros/dsp/fft.hpp"
#include "ros/dsp/peaks.hpp"
#include "ros/exec/arena.hpp"
#include "ros/simd/simd.hpp"

namespace ros::radar {

using namespace ros::common;

namespace {

/// Window coefficients cached per (window, n): the frame loop windows
/// the same chirp length every frame, and make_window's per-call
/// allocation was a steady-state heap hit. Thread-local, bounded.
const std::vector<double>& cached_window(ros::dsp::Window w,
                                         std::size_t n) {
  thread_local std::unordered_map<std::size_t, std::vector<double>> cache;
  if (cache.size() > 32) cache.clear();
  const std::size_t key = (static_cast<std::size_t>(w) << 48) ^ n;
  const auto [it, inserted] = cache.try_emplace(key);
  if (inserted) it->second = ros::dsp::make_window(w, n);
  return it->second;
}

}  // namespace

std::size_t RangeProfile::bin_of_range(double range_m) const {
  ROS_EXPECT(bin_spacing_m > 0.0, "profile is empty");
  const auto b = static_cast<std::size_t>(
      std::lround(range_m / bin_spacing_m));
  return std::min(b, n_bins() - 1);
}

RangeProfile range_fft(const FrameCube& frame, const FmcwChirp& chirp,
                       ros::dsp::Window window) {
  RangeProfile out;
  range_fft_into(frame, chirp, window, out);
  return out;
}

void range_fft_into(const FrameCube& frame, const FmcwChirp& chirp,
                    ros::dsp::Window window, RangeProfile& out) {
  ROS_EXPECT(!frame.empty() && !frame[0].empty(), "frame must be non-empty");
  const std::size_t n = frame[0].size();
  const auto& win = cached_window(window, n);
  const double gain = ros::dsp::coherent_gain(win);
  const bool pow2 = (n & (n - 1)) == 0;

  if (out.bins.size() != frame.size()) out.bins.resize(frame.size());
  for (std::size_t k = 0; k < frame.size(); ++k) {
    const auto& chan = frame[k];
    ROS_EXPECT(chan.size() == n, "ragged frame cube");
    // Complex (IQ) baseband: all n bins are unambiguous beat
    // frequencies, so the full ADC-limited range (~11.4 m on the TI
    // config) is usable. Normalize so a unit-amplitude tone yields a
    // unit-magnitude bin.
    const double norm = 1.0 / (static_cast<double>(n) * gain);
    auto& spec = out.bins[k];
    spec.assign(chan.begin(), chan.end());
    ros::dsp::apply_window(spec, win);
    if (pow2) {
      ros::dsp::fft_pow2_inplace(std::span<cplx>(spec));
    } else {
      spec = ros::dsp::fft(spec);
    }
    for (auto& v : spec) v *= norm;
  }
  // Bin b corresponds to beat frequency b * fs / N.
  const double beat_per_bin =
      chirp.sample_rate_hz / static_cast<double>(n);
  out.bin_spacing_m = chirp.range_for_beat_hz(beat_per_bin);
}

cplx beamform_bin(const RangeProfile& profile, std::size_t bin,
                  const RadarArray& array, double hz, double az_rad) {
  ROS_EXPECT(bin < profile.n_bins(), "bin out of range");
  const double d = array.rx_spacing(hz);
  const double lambda = wavelength(hz);
  const double sin_az = std::sin(az_rad);
  const std::size_t n_rx = profile.bins.size();
  const auto& simd = ros::simd::ops();

  auto& arena = ros::exec::Arena::thread_local_arena();
  ros::exec::Arena::Scope scope(arena);
  auto re = arena.alloc_span<double>(n_rx);
  auto im = arena.alloc_span<double>(n_rx);
  auto phase = arena.alloc_span<double>(n_rx);
  for (std::size_t k = 0; k < n_rx; ++k) {
    re[k] = profile.bins[k][bin].real();
    im[k] = profile.bins[k][bin].imag();
  }
  const double step = -2.0 * kPi * d * sin_az / lambda;
  simd.linear_phase(0.0, step, phase.data(), n_rx);
  const cplx sum = simd.phase_mac(re.data(), im.data(), phase.data(), n_rx);
  return sum / static_cast<double>(n_rx);
}

std::vector<double> aoa_power_spectrum(const RangeProfile& profile,
                                       std::size_t bin,
                                       const RadarArray& array, double hz,
                                       std::span<const double> angles_rad) {
  std::vector<double> out(angles_rad.size());
  aoa_power_spectrum_into(profile, bin, array, hz, angles_rad, out);
  return out;
}

void aoa_power_spectrum_into(const RangeProfile& profile, std::size_t bin,
                             const RadarArray& array, double hz,
                             std::span<const double> angles_rad,
                             std::span<double> out) {
  ROS_EXPECT(bin < profile.n_bins(), "bin out of range");
  ROS_EXPECT(out.size() == angles_rad.size(),
             "output size must match the angle grid");
  const std::size_t n_a = angles_rad.size();
  const std::size_t n_rx = profile.bins.size();
  const double d = array.rx_spacing(hz);
  const double lambda = wavelength(hz);
  const auto& simd = ros::simd::ops();

  // Swap the loops relative to beamform_bin-per-angle: each antenna
  // spreads its bin sample over the whole angle grid with one
  // scale + cexp_madd pass, so the angle dimension (the long one)
  // runs through the vector lanes. Per angle the accumulation order
  // over k is unchanged, so results match the beamform_bin route up
  // to phase rounding.
  auto& arena = ros::exec::Arena::thread_local_arena();
  ros::exec::Arena::Scope scope(arena);
  auto sin_az = arena.alloc_span<double>(n_a);
  auto cos_scratch = arena.alloc_span<double>(n_a);
  auto phase = arena.alloc_span<double>(n_a);
  auto acc_re = arena.alloc_span<double>(n_a);
  auto acc_im = arena.alloc_span<double>(n_a);
  simd.sincos(angles_rad.data(), sin_az.data(), cos_scratch.data(), n_a);
  std::fill(acc_re.begin(), acc_re.end(), 0.0);
  std::fill(acc_im.begin(), acc_im.end(), 0.0);

  for (std::size_t k = 0; k < n_rx; ++k) {
    const double ck = -2.0 * kPi * static_cast<double>(k) * d / lambda;
    simd.scale(ck, sin_az.data(), phase.data(), n_a);
    const cplx x = profile.bins[k][bin];
    simd.cexp_madd(x.real(), x.imag(), phase.data(), acc_re.data(),
                   acc_im.data(), n_a);
  }
  const double inv_n = 1.0 / static_cast<double>(n_rx);
  for (std::size_t a = 0; a < n_a; ++a) {
    const double re = acc_re[a] * inv_n;
    const double im = acc_im[a] * inv_n;
    out[a] = re * re + im * im;
  }
}

std::vector<Detection> detect_points(const RangeProfile& profile,
                                     const RadarArray& array, double hz,
                                     const DetectorOptions& opts) {
  ROS_EXPECT(profile.n_bins() > 0, "profile must be non-empty");
  // Non-coherent power across antennas for CFAR.
  const std::size_t n_bins = profile.n_bins();
  std::vector<double> power(n_bins, 0.0);
  for (const auto& chan : profile.bins) {
    for (std::size_t b = 0; b < n_bins; ++b) power[b] += std::norm(chan[b]);
  }

  const auto cells = ros::dsp::ca_cfar(power, opts.cfar);

  const auto angles =
      linspace(-array.fov_half_angle_rad, array.fov_half_angle_rad,
               opts.n_angles);
  std::vector<Detection> out;
  for (const auto& cell : cells) {
    const double range = profile.range_of_bin(cell.index);
    if (range < opts.min_range_m) continue;
    const auto aoa = aoa_power_spectrum(profile, cell.index, array, hz,
                                        angles);
    const double cell_max = *std::max_element(aoa.begin(), aoa.end());
    ros::dsp::PeakOptions po;
    po.min_value = cell_max * opts.aoa_peak_min_rel;
    // Peaks closer than half the array beamwidth are one reflector.
    const double step = angles[1] - angles[0];
    po.min_separation = std::max<std::size_t>(
        1, static_cast<std::size_t>(array.beamwidth_rad() / (2.0 * step)));
    po.max_peaks = opts.max_aoa_peaks;
    for (const auto& pk : ros::dsp::find_peaks(aoa, po)) {
      Detection d;
      d.range_m = range;
      d.azimuth_rad =
          angles.front() + pk.refined_index * step;
      d.rss_dbm = watt_to_dbm(pk.refined_value);
      d.snr_db = cell.snr_db;
      out.push_back(d);
    }
  }
  return out;
}

double beamformed_rss_dbm(const RangeProfile& profile,
                          const RadarArray& array, double hz,
                          double range_m, double az_rad) {
  const std::size_t center = profile.bin_of_range(range_m);
  double best = 0.0;
  const std::size_t lo = center > 0 ? center - 1 : 0;
  const std::size_t hi = std::min(center + 1, profile.n_bins() - 1);
  for (std::size_t b = lo; b <= hi; ++b) {
    best = std::max(best, std::norm(beamform_bin(profile, b, array, hz,
                                                 az_rad)));
  }
  return watt_to_dbm(best);
}

}  // namespace ros::radar
