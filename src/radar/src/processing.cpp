#include "ros/radar/processing.hpp"

#include <algorithm>
#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/grid.hpp"
#include "ros/common/units.hpp"
#include "ros/dsp/fft.hpp"
#include "ros/dsp/peaks.hpp"

namespace ros::radar {

using namespace ros::common;

std::size_t RangeProfile::bin_of_range(double range_m) const {
  ROS_EXPECT(bin_spacing_m > 0.0, "profile is empty");
  const auto b = static_cast<std::size_t>(
      std::lround(range_m / bin_spacing_m));
  return std::min(b, n_bins() - 1);
}

RangeProfile range_fft(const FrameCube& frame, const FmcwChirp& chirp,
                       ros::dsp::Window window) {
  ROS_EXPECT(!frame.empty() && !frame[0].empty(), "frame must be non-empty");
  const std::size_t n = frame[0].size();
  const auto win = ros::dsp::make_window(window, n);
  const double gain = ros::dsp::coherent_gain(win);

  RangeProfile out;
  out.bins.reserve(frame.size());
  for (const auto& chan : frame) {
    ROS_EXPECT(chan.size() == n, "ragged frame cube");
    std::vector<cplx> x(chan);
    ros::dsp::apply_window(x, win);
    auto spec = ros::dsp::fft(x);
    // Complex (IQ) baseband: all n bins are unambiguous beat
    // frequencies, so the full ADC-limited range (~11.4 m on the TI
    // config) is usable. Normalize so a unit-amplitude tone yields a
    // unit-magnitude bin.
    const double norm = 1.0 / (static_cast<double>(n) * gain);
    for (auto& v : spec) v *= norm;
    out.bins.push_back(std::move(spec));
  }
  // Bin b corresponds to beat frequency b * fs / N.
  const double beat_per_bin =
      chirp.sample_rate_hz / static_cast<double>(n);
  out.bin_spacing_m = chirp.range_for_beat_hz(beat_per_bin);
  return out;
}

cplx beamform_bin(const RangeProfile& profile, std::size_t bin,
                  const RadarArray& array, double hz, double az_rad) {
  ROS_EXPECT(bin < profile.n_bins(), "bin out of range");
  const double d = array.rx_spacing(hz);
  const double lambda = wavelength(hz);
  const double sin_az = std::sin(az_rad);
  cplx sum{0.0, 0.0};
  for (std::size_t k = 0; k < profile.bins.size(); ++k) {
    const double phi =
        -2.0 * kPi * static_cast<double>(k) * d * sin_az / lambda;
    sum += profile.bins[k][bin] * std::polar(1.0, phi);
  }
  return sum / static_cast<double>(profile.bins.size());
}

std::vector<double> aoa_power_spectrum(const RangeProfile& profile,
                                       std::size_t bin,
                                       const RadarArray& array, double hz,
                                       std::span<const double> angles_rad) {
  std::vector<double> out(angles_rad.size());
  for (std::size_t i = 0; i < angles_rad.size(); ++i) {
    out[i] = std::norm(beamform_bin(profile, bin, array, hz, angles_rad[i]));
  }
  return out;
}

std::vector<Detection> detect_points(const RangeProfile& profile,
                                     const RadarArray& array, double hz,
                                     const DetectorOptions& opts) {
  ROS_EXPECT(profile.n_bins() > 0, "profile must be non-empty");
  // Non-coherent power across antennas for CFAR.
  const std::size_t n_bins = profile.n_bins();
  std::vector<double> power(n_bins, 0.0);
  for (const auto& chan : profile.bins) {
    for (std::size_t b = 0; b < n_bins; ++b) power[b] += std::norm(chan[b]);
  }

  const auto cells = ros::dsp::ca_cfar(power, opts.cfar);

  const auto angles =
      linspace(-array.fov_half_angle_rad, array.fov_half_angle_rad,
               opts.n_angles);
  std::vector<Detection> out;
  for (const auto& cell : cells) {
    const double range = profile.range_of_bin(cell.index);
    if (range < opts.min_range_m) continue;
    const auto aoa = aoa_power_spectrum(profile, cell.index, array, hz,
                                        angles);
    const double cell_max = *std::max_element(aoa.begin(), aoa.end());
    ros::dsp::PeakOptions po;
    po.min_value = cell_max * opts.aoa_peak_min_rel;
    // Peaks closer than half the array beamwidth are one reflector.
    const double step = angles[1] - angles[0];
    po.min_separation = std::max<std::size_t>(
        1, static_cast<std::size_t>(array.beamwidth_rad() / (2.0 * step)));
    po.max_peaks = opts.max_aoa_peaks;
    for (const auto& pk : ros::dsp::find_peaks(aoa, po)) {
      Detection d;
      d.range_m = range;
      d.azimuth_rad =
          angles.front() + pk.refined_index * step;
      d.rss_dbm = watt_to_dbm(pk.refined_value);
      d.snr_db = cell.snr_db;
      out.push_back(d);
    }
  }
  return out;
}

double beamformed_rss_dbm(const RangeProfile& profile,
                          const RadarArray& array, double hz,
                          double range_m, double az_rad) {
  const std::size_t center = profile.bin_of_range(range_m);
  double best = 0.0;
  const std::size_t lo = center > 0 ? center - 1 : 0;
  const std::size_t hi = std::min(center + 1, profile.n_bins() - 1);
  for (std::size_t b = lo; b <= hi; ++b) {
    best = std::max(best, std::norm(beamform_bin(profile, b, array, hz,
                                                 az_rad)));
  }
  return watt_to_dbm(best);
}

}  // namespace ros::radar
