#include "ros/radar/tdm_mimo.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::radar {

using namespace ros::common;

FrameCube synthesize_tdm_virtual(const FmcwChirp& chirp,
                                 const TdmMimoConfig& config,
                                 std::span<const ScatterReturn> returns,
                                 double noise_w, Rng& rng) {
  ROS_EXPECT(config.n_tx >= 1, "need at least one Tx");
  ROS_EXPECT(config.n_rx_physical >= 1, "need at least one Rx");
  ROS_EXPECT(config.tx_interval_s >= 0.0, "interval must be non-negative");

  RadarArray physical = RadarArray::ti_iwr1443();
  physical.n_rx = config.n_rx_physical;
  const WaveformSynthesizer synth(chirp, physical);

  const double fc = chirp.center_hz();
  const double lambda = kSpeedOfLight / fc;
  const double d_rx = physical.rx_spacing(fc);

  FrameCube virtual_cube;
  virtual_cube.reserve(static_cast<std::size_t>(config.n_tx) *
                       static_cast<std::size_t>(config.n_rx_physical));
  std::vector<ScatterReturn> shifted(returns.begin(), returns.end());
  for (int m = 0; m < config.n_tx; ++m) {
    const double tx_offset =
        static_cast<double>(m) * static_cast<double>(config.n_rx_physical) *
        d_rx;
    const double t = static_cast<double>(m) * config.tx_interval_s;
    for (std::size_t i = 0; i < shifted.size(); ++i) {
      // Tx displacement adds a one-way aperture phase; the later chirp
      // adds the Doppler phase the compensation must undo.
      shifted[i].phase_rad =
          returns[i].phase_rad +
          2.0 * kPi * tx_offset * std::sin(returns[i].azimuth_rad) /
              lambda +
          2.0 * kPi * returns[i].doppler_hz * t;
    }
    const FrameCube block = synth.synthesize(shifted, noise_w, rng);
    for (auto& chan : block) virtual_cube.push_back(chan);
  }
  return virtual_cube;
}

void compensate_tdm_doppler(FrameCube& virtual_cube,
                            const TdmMimoConfig& config,
                            double doppler_hz) {
  ROS_EXPECT(virtual_cube.size() ==
                 static_cast<std::size_t>(config.n_tx) *
                     static_cast<std::size_t>(config.n_rx_physical),
             "cube does not match the TDM configuration");
  for (int m = 1; m < config.n_tx; ++m) {
    const double phase = -2.0 * kPi * doppler_hz *
                         static_cast<double>(m) * config.tx_interval_s;
    const cplx rot = std::polar(1.0, phase);
    for (int r = 0; r < config.n_rx_physical; ++r) {
      auto& chan = virtual_cube[static_cast<std::size_t>(
          m * config.n_rx_physical + r)];
      for (auto& v : chan) v *= rot;
    }
  }
}

}  // namespace ros::radar
