#include "ros/radar/doppler.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/mathx.hpp"
#include "ros/common/units.hpp"
#include "ros/dsp/fft.hpp"
#include "ros/dsp/peaks.hpp"
#include "ros/dsp/window.hpp"

namespace ros::radar {

using namespace ros::common;

double ChirpTrain::max_unambiguous_velocity(double hz) const {
  return wavelength(hz) / (4.0 * chirp_interval_s);
}

double ChirpTrain::velocity_resolution(double hz) const {
  return wavelength(hz) /
         (2.0 * static_cast<double>(n_chirps) * chirp_interval_s);
}

TrainProfiles synthesize_train(const WaveformSynthesizer& synth,
                               std::span<const ScatterReturn> returns,
                               const ChirpTrain& train, double noise_w,
                               Rng& rng) {
  ROS_EXPECT(train.n_chirps >= 1, "need at least one chirp");
  ROS_EXPECT(train.chirp_interval_s > 0.0, "chirp interval must be positive");
  TrainProfiles out;
  out.reserve(static_cast<std::size_t>(train.n_chirps));
  std::vector<ScatterReturn> shifted(returns.begin(), returns.end());
  for (int k = 0; k < train.n_chirps; ++k) {
    const double t = static_cast<double>(k) * train.chirp_interval_s;
    for (std::size_t i = 0; i < shifted.size(); ++i) {
      shifted[i].phase_rad =
          returns[i].phase_rad + 2.0 * kPi * returns[i].doppler_hz * t;
    }
    out.push_back(range_fft(synth.synthesize(shifted, noise_w, rng),
                            synth.chirp()));
  }
  return out;
}

RangeDopplerMap range_doppler(const TrainProfiles& profiles,
                              const ChirpTrain& train, double hz) {
  ROS_EXPECT(!profiles.empty(), "train must be non-empty");
  const std::size_t n_chirps = profiles.size();
  const std::size_t n_bins = profiles[0].n_bins();
  const auto win = ros::dsp::make_window(ros::dsp::Window::hann, n_chirps);
  const double gain = ros::dsp::coherent_gain(win);

  RangeDopplerMap map;
  map.bin_spacing_m = profiles[0].bin_spacing_m;
  map.n_chirps = static_cast<int>(n_chirps);
  // Doppler bin b (fft-shifted) spans f_d = (b - N/2) / (N T); velocity
  // v = f_d * lambda / 2.
  map.velocity_per_bin =
      wavelength(hz) /
      (2.0 * static_cast<double>(n_chirps) * train.chirp_interval_s);
  map.power.assign(n_bins, std::vector<double>(n_chirps, 0.0));

  std::vector<cplx> slow(n_chirps);
  for (std::size_t b = 0; b < n_bins; ++b) {
    for (std::size_t k = 0; k < n_chirps; ++k) {
      slow[k] = profiles[k].bins[0][b] * win[k];
    }
    const auto spec = ros::dsp::fftshift(ros::dsp::fft(slow));
    for (std::size_t k = 0; k < n_chirps; ++k) {
      map.power[b][k] =
          std::norm(spec[k] / (static_cast<double>(n_chirps) * gain));
    }
  }
  return map;
}

double RangeDopplerMap::velocity_of_bin(std::size_t doppler_bin) const {
  const double centered =
      static_cast<double>(doppler_bin) -
      static_cast<double>(static_cast<std::size_t>(n_chirps) / 2);
  return centered * velocity_per_bin;
}

double estimate_radial_velocity(const RangeDopplerMap& map,
                                double range_m) {
  ROS_EXPECT(map.bin_spacing_m > 0.0, "map is empty");
  const auto bin = static_cast<std::size_t>(
      std::lround(range_m / map.bin_spacing_m));
  ROS_EXPECT(bin < map.n_range_bins(), "range outside the map");
  const auto& row = map.power[bin];
  const std::size_t peak = argmax(row);
  const auto refined = ros::dsp::refine_peak(row, peak);
  const double centered =
      refined.refined_index -
      static_cast<double>(static_cast<std::size_t>(map.n_chirps) / 2);
  return centered * map.velocity_per_bin;
}

}  // namespace ros::radar
