// Window-scoped decoder-series state (ros::dsp).
//
// The streaming pipeline accumulates the spatial decoder's input — the
// (u, linear RSS) sample series — one frame at a time. This container
// owns that state: append-only in the common case, with optional
// front-eviction for bounded sliding windows, while always exposing the
// contiguous vectors the spectrum decoder consumes (no copy at decode
// time).
//
// Front eviction is amortized O(1): trimmed entries are first tracked
// by an offset and physically compacted only when they exceed half the
// buffer, so a long-running stream neither reallocates per frame nor
// pays O(n) per eviction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ros/common/expect.hpp"

namespace ros::dsp {

class SeriesWindow {
 public:
  /// `max_samples` = 0 keeps every sample (unbounded; the
  /// batch-equivalent configuration). Otherwise the window holds at
  /// most `max_samples` newest samples.
  explicit SeriesWindow(std::size_t max_samples = 0)
      : max_samples_(max_samples) {}

  void push(double u, double rss_linear) {
    u_.push_back(u);
    rss_.push_back(rss_linear);
    if (max_samples_ > 0 && size() > max_samples_) pop_front();
    maybe_compact();
  }

  /// Pre-size the backing storage (a streaming engine that knows its
  /// frame count reserves up front so the steady-state loop is
  /// allocation-free).
  void reserve(std::size_t n) {
    u_.reserve(n);
    rss_.reserve(n);
  }

  std::size_t size() const { return u_.size() - offset_; }
  bool empty() const { return size() == 0; }
  std::size_t max_samples() const { return max_samples_; }

  /// Contiguous decoder inputs, oldest surviving sample first. Views
  /// into the window's storage: valid until the next push/clear.
  std::span<const double> u() const {
    return {u_.data() + offset_, size()};
  }
  std::span<const double> rss_linear() const {
    return {rss_.data() + offset_, size()};
  }

  double back_u() const {
    ROS_EXPECT(!empty(), "series window is empty");
    return u_.back();
  }

  void clear() {
    u_.clear();
    rss_.clear();
    offset_ = 0;
  }

 private:
  void pop_front() {
    ROS_EXPECT(!empty(), "series window is empty");
    ++offset_;
  }

  void maybe_compact() {
    if (offset_ == 0 || offset_ * 2 < u_.size()) return;
    u_.erase(u_.begin(), u_.begin() + static_cast<std::ptrdiff_t>(offset_));
    rss_.erase(rss_.begin(),
               rss_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }

  std::size_t max_samples_;
  std::size_t offset_ = 0;  ///< trimmed-but-not-compacted front entries
  std::vector<double> u_;
  std::vector<double> rss_;
};

}  // namespace ros::dsp
