// Small dense complex linear algebra: just enough for subspace methods
// (MUSIC). Matrices are row-major vectors of rows.
#pragma once

#include <vector>

#include "ros/common/units.hpp"

namespace ros::dsp {

using ros::common::cplx;
using cmat = std::vector<std::vector<cplx>>;

/// n x n zero matrix.
cmat zeros(std::size_t n);

/// n x n identity.
cmat identity(std::size_t n);

/// C = A * B (sizes must agree).
cmat matmul(const cmat& a, const cmat& b);

/// Conjugate transpose.
cmat hermitian(const cmat& a);

/// True if the matrix is Hermitian to within `tol`.
bool is_hermitian(const cmat& a, double tol = 1e-9);

struct EigenResult {
  std::vector<double> values;  ///< descending
  cmat vectors;                ///< column k (vectors[i][k]) pairs values[k]
};

/// Eigendecomposition of a Hermitian matrix via cyclic complex Jacobi
/// rotations. Eigenvalues are real, returned in descending order with
/// orthonormal eigenvectors.
EigenResult hermitian_eigen(const cmat& a, double tol = 1e-12,
                            int max_sweeps = 60);

}  // namespace ros::dsp
