// Cell-averaging constant-false-alarm-rate (CA-CFAR) detection.
//
// Used on range profiles to pick out reflectors above the local noise
// estimate regardless of absolute noise level (standard automotive radar
// practice; Richards, "Fundamentals of Radar Signal Processing").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ros::dsp {

struct CfarOptions {
  std::size_t guard_cells = 2;    ///< cells skipped around the cell under test
  std::size_t training_cells = 8; ///< averaging cells on each side
  double threshold_db = 10.0;     ///< detection threshold over noise estimate
};

struct CfarDetection {
  std::size_t index = 0;
  double value = 0.0;       ///< power in the cell under test
  double noise_level = 0.0; ///< local noise estimate
  double snr_db = 0.0;      ///< value over noise, in dB
};

/// Run CA-CFAR over a power sequence, returning detected cells that are
/// also local maxima.
std::vector<CfarDetection> ca_cfar(std::span<const double> power,
                                   const CfarOptions& opts);

}  // namespace ros::dsp
