// On-off-keying SNR and BER metrics (paper Sec. 7.1, "Evaluation metrics").
//
// RoS encodes bit "1" as a coding peak and bit "0" as a null, i.e. OOK.
// The paper's SNR is (mu1 - mu0)^2 / sigma^2 over coding-peak amplitudes,
// and BER follows the OOK model. The mapping below reproduces all three
// anchor pairs the paper quotes: 15.8 dB -> 0.1 %, 14 dB -> 0.6 %,
// 10 dB -> 5.7 %.
#pragma once

#include <span>

namespace ros::dsp {

/// OOK decision SNR from measured peak amplitudes of "1" bits and "0"
/// slots: (mean(ones) - mean(zeros))^2 / var(all deviations). Returns the
/// *linear* SNR; convert with linear_to_db for reporting.
double ook_snr(std::span<const double> one_amplitudes,
               std::span<const double> zero_amplitudes);

/// BER of OOK at linear SNR: 0.5 * erfc(sqrt(snr) / (2*sqrt(2))).
double ook_ber(double snr_linear);

/// BER given SNR in dB.
double ook_ber_from_db(double snr_db);

/// Inverse mapping: the linear SNR that yields bit error rate `ber`
/// (bisection; ber in (0, 0.5)).
double ook_snr_for_ber(double ber);

}  // namespace ros::dsp
