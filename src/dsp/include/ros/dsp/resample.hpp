// Resampling of non-uniform samples onto uniform grids.
//
// The moving radar samples the tag's RCS at whatever u = cos(theta)
// values its trajectory produces; decoding needs uniform-u samples before
// the FFT (Sec. 5.1/6). Linear interpolation is sufficient at the
// oversampling rates a >=1 kHz frame rate provides (Sec. 5.3).
#pragma once

#include <span>
#include <vector>

namespace ros::dsp {

/// Linear interpolation of (xs, ys) at query point `x`. xs must be
/// strictly increasing. Query points outside the range clamp to the ends.
double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x);

/// Resample (xs, ys) onto `n` uniform points spanning [xs.front(),
/// xs.back()]. Returns the new y values; the implied grid is linspace.
std::vector<double> resample_uniform(std::span<const double> xs,
                                     std::span<const double> ys,
                                     std::size_t n);

/// Noise-aware resampling onto `n` uniform points: every output cell
/// averages all input samples falling inside it (boxcar binning), which
/// reduces uncorrelated measurement noise by ~sqrt(samples per cell) --
/// crucial when a 1 kHz radar heavily oversamples the RCS tones. Cells
/// with no samples fall back to linear interpolation.
std::vector<double> resample_bin_average(std::span<const double> xs,
                                         std::span<const double> ys,
                                         std::size_t n);

/// Allocation-free variant of resample_bin_average for arena-backed hot
/// paths: writes the n = out.size() resampled values into `out` (which
/// doubles as the bin-sum accumulator) using `count` (same size) as
/// per-cell sample counts. Bit-identical to the vector overload.
void resample_bin_average_into(std::span<const double> xs,
                               std::span<const double> ys,
                               std::span<double> out,
                               std::span<std::size_t> count);

/// True if xs is strictly increasing.
bool strictly_increasing(std::span<const double> xs);

}  // namespace ros::dsp
