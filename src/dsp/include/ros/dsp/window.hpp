// Tapering windows for spectral analysis.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ros/common/units.hpp"

namespace ros::dsp {

enum class Window { rectangular, hann, hamming, blackman };

/// Window coefficients of length `n` (symmetric form).
std::vector<double> make_window(Window w, std::size_t n);

/// Multiply a complex sequence by a window in place.
void apply_window(std::span<ros::common::cplx> x, std::span<const double> w);

/// Coherent gain of a window (mean of coefficients), used to normalize
/// spectral amplitudes.
double coherent_gain(std::span<const double> w);

}  // namespace ros::dsp
