// RCS frequency spectrum (paper Eq. 7).
//
// The multi-stack RCS sampled over u = cos(theta) is a sum of cosines
// whose frequencies encode pairwise stack spacings: a stack pair spaced
// by d contributes a tone at 2*d/lambda cycles per unit u. This helper
// resamples irregular (u, RCS) measurements onto a uniform u grid,
// removes the DC term (the "M" in Eq. 6), windows, zero-pads, and
// FFTs, returning the one-sided spectrum indexed by *spacing in
// wavelengths* so decoders can look up peaks at candidate stack
// positions directly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ros/dsp/window.hpp"

namespace ros::dsp {

/// Optional capture of rcs_spectrum() intermediates, for decode
/// forensics (ros::obs::probe): the uniform resampled series before and
/// after envelope whitening, plus the u grid they live on. Pointed to
/// from SpectrumOptions; filled only when non-null, so the normal
/// decode path pays nothing.
struct SpectrumTap {
  std::vector<double> u_grid;     ///< uniform u axis (resample cells)
  std::vector<double> resampled;  ///< bin-averaged series pre-whitening
  std::vector<double> whitened;   ///< series the FFT actually saw
  std::size_t fft_size = 0;       ///< zero-padded FFT length
};

struct SpectrumOptions {
  /// Uniform-u grid size; 0 = auto (256 cells, enough for any coding
  /// band while letting dense 1 kHz sampling average down noise via
  /// resample_bin_average).
  std::size_t resample_points = 0;
  std::size_t zero_pad_factor = 8;   ///< interpolation factor in frequency
  Window window = Window::hann;
  bool remove_mean = true;           ///< subtract DC before the FFT
  /// Divide out the slowly varying envelope r_T(u) (single-stack pattern,
  /// path-loss drift) with a moving average before the FFT, leaving the
  /// pure layout tones of Eq. 6. Essential for real (non-flat) RCS data.
  bool whiten_envelope = true;
  /// Moving-average length in resampled samples; 0 = auto (n / 6).
  std::size_t whiten_window = 0;
  /// When non-null, rcs_spectrum() records its intermediates here
  /// (forensic tap; see SpectrumTap). Not owned.
  SpectrumTap* tap = nullptr;
};

struct RcsSpectrum {
  std::vector<double> spacing_lambda;  ///< axis: stack spacing in lambdas
  std::vector<double> amplitude;       ///< spectral magnitude (normalized)
  double u_span = 0.0;                 ///< width of the observed u window
  double resolution_lambda = 0.0;      ///< Rayleigh resolution in lambdas

  /// Linear-interpolated amplitude at a given spacing (lambdas).
  double amplitude_at(double spacing) const;

  /// Maximum spacing representable on the axis.
  double max_spacing() const;
};

/// Compute the RCS frequency spectrum from samples of (u, rcs) where
/// `u` is cos(DoA) (need not be sorted; it will be) and `rcs_linear` is
/// the linear-scale RCS or RSS sample at that u.
RcsSpectrum rcs_spectrum(std::span<const double> u,
                         std::span<const double> rcs_linear,
                         const SpectrumOptions& opts = {});

/// The envelope-whitening moving-average length rcs_spectrum uses for an
/// n-point resampled series (opts.whiten_window, or n/6 auto).
std::size_t whiten_window_size(const SpectrumOptions& opts, std::size_t n);

/// Envelope-whiten `y` in place: estimate the slowly varying envelope
/// with a centered boxcar of length `window`, subtract it, and scale by
/// the envelope mean. `env_scratch` must match y.size(). This is the
/// exact whitening step of rcs_spectrum(), shared so matched-filter
/// decoders see a bit-identical series.
void whiten_envelope_inplace(std::span<double> y, std::size_t window,
                             std::span<double> env_scratch);

}  // namespace ros::dsp
