// Peak detection with sub-bin interpolation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ros::dsp {

/// A detected local maximum in a sampled sequence.
struct Peak {
  std::size_t index = 0;      ///< integer bin of the maximum
  double refined_index = 0.0; ///< parabola-refined fractional bin
  double value = 0.0;         ///< sample value at the integer bin
  double refined_value = 0.0; ///< parabola-refined peak value
};

struct PeakOptions {
  double min_value = 0.0;          ///< absolute height threshold
  std::size_t min_separation = 1;  ///< minimum index distance between peaks
  std::size_t max_peaks = SIZE_MAX;///< keep at most this many (by height)
};

/// Find local maxima of `xs` subject to `opts`, strongest first.
/// Quadratic (three-point parabolic) interpolation refines each peak.
std::vector<Peak> find_peaks(std::span<const double> xs,
                             const PeakOptions& opts);

/// Refine a single local maximum at `index` by parabolic interpolation.
Peak refine_peak(std::span<const double> xs, std::size_t index);

}  // namespace ros::dsp
