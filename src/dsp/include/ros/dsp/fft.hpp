// Discrete Fourier transforms.
//
// Radix-2 iterative Cooley-Tukey for power-of-two sizes, Bluestein's
// chirp-z algorithm for everything else, so callers never need to care
// about the length. Used for range FFTs (Eq. 3), AoA pseudo-spectra
// (Eq. 4) and the RCS frequency spectrum (Eq. 7).
//
// Per-size plans (bit-reversal tables, twiddles, the Bluestein chirp
// and its padded kernel FFT) are cached in thread-local storage, so
// repeated same-size transforms -- the per-frame range FFTs -- skip the
// trig setup. Caching is transparent: results are bit-identical across
// calls and across ros::exec worker threads, and the caches are bounded
// so varied sizes degrade to the uncached cost, never to unbounded
// memory.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ros/common/units.hpp"

namespace ros::dsp {

using ros::common::cplx;

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Forward DFT of arbitrary length. X[k] = sum_n x[n] exp(-j 2 pi k n / N).
std::vector<cplx> fft(std::span<const cplx> x);

/// Inverse DFT (includes the 1/N normalization).
std::vector<cplx> ifft(std::span<const cplx> x);

/// In-place radix-2 FFT; size must be a power of two. The butterfly
/// stages run through the active ros::simd backend; the span overload
/// lets frame loops transform arena/reused storage without copying.
void fft_pow2_inplace(std::span<cplx> x, bool inverse = false);
void fft_pow2_inplace(std::vector<cplx>& x, bool inverse = false);

/// Rotate the spectrum so bin 0 (DC) sits at the center.
std::vector<cplx> fftshift(std::span<const cplx> x);

/// Element-wise |X[k]|.
std::vector<double> magnitude(std::span<const cplx> x);

/// Element-wise |X[k]|^2.
std::vector<double> power(std::span<const cplx> x);

}  // namespace ros::dsp
