#include "ros/dsp/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ros/common/expect.hpp"

namespace ros::dsp {

cmat zeros(std::size_t n) {
  return cmat(n, std::vector<cplx>(n, cplx{0.0, 0.0}));
}

cmat identity(std::size_t n) {
  cmat out = zeros(n);
  for (std::size_t i = 0; i < n; ++i) out[i][i] = 1.0;
  return out;
}

cmat matmul(const cmat& a, const cmat& b) {
  ROS_EXPECT(!a.empty() && !b.empty(), "matrices must be non-empty");
  const std::size_t n = a.size();
  const std::size_t k = a[0].size();
  ROS_EXPECT(b.size() == k, "inner dimensions must agree");
  const std::size_t m = b[0].size();
  cmat out(n, std::vector<cplx>(m, cplx{0.0, 0.0}));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < k; ++l) {
      const cplx ail = a[i][l];
      for (std::size_t j = 0; j < m; ++j) out[i][j] += ail * b[l][j];
    }
  }
  return out;
}

cmat hermitian(const cmat& a) {
  const std::size_t n = a.size();
  ROS_EXPECT(n > 0, "matrix must be non-empty");
  const std::size_t m = a[0].size();
  cmat out(m, std::vector<cplx>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) out[j][i] = std::conj(a[i][j]);
  }
  return out;
}

bool is_hermitian(const cmat& a, double tol) {
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].size() != n) return false;
    for (std::size_t j = 0; j <= i; ++j) {
      if (std::abs(a[i][j] - std::conj(a[j][i])) > tol) return false;
    }
  }
  return true;
}

EigenResult hermitian_eigen(const cmat& a_in, double tol, int max_sweeps) {
  ROS_EXPECT(is_hermitian(a_in, 1e-6), "matrix must be Hermitian");
  const std::size_t n = a_in.size();
  cmat a = a_in;
  cmat v = identity(n);

  const auto offdiag_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += std::norm(a[i][j]);
    }
    return std::sqrt(s);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (offdiag_norm() < tol) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const cplx apq = a[p][q];
        const double mag = std::abs(apq);
        if (mag < 1e-300) continue;
        // Phase that makes the pivot real, then a real Jacobi rotation.
        const cplx phase = apq / mag;
        const double app = a[p][p].real();
        const double aqq = a[q][q].real();
        const double tau = (aqq - app) / (2.0 * mag);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        const cplx sp = s * phase;  // complex "sine" with pivot phase

        // A <- G^H A G with G = [[c, sp], [-conj(sp), c]] on (p, q).
        for (std::size_t i = 0; i < n; ++i) {
          const cplx aip = a[i][p];
          const cplx aiq = a[i][q];
          a[i][p] = c * aip - std::conj(sp) * aiq;
          a[i][q] = sp * aip + c * aiq;
        }
        for (std::size_t j = 0; j < n; ++j) {
          const cplx apj = a[p][j];
          const cplx aqj = a[q][j];
          a[p][j] = c * apj - sp * aqj;
          a[q][j] = std::conj(sp) * apj + c * aqj;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const cplx vip = v[i][p];
          const cplx viq = v[i][q];
          v[i][p] = c * vip - std::conj(sp) * viq;
          v[i][q] = sp * vip + c * viq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a[x][x].real() > a[y][y].real();
  });

  EigenResult out;
  out.values.resize(n);
  out.vectors = zeros(n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = a[order[k]][order[k]].real();
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors[i][k] = v[i][order[k]];
    }
  }
  return out;
}

}  // namespace ros::dsp
