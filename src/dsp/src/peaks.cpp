#include "ros/dsp/peaks.hpp"

#include <algorithm>
#include <cmath>

#include "ros/common/expect.hpp"

namespace ros::dsp {

Peak refine_peak(std::span<const double> xs, std::size_t index) {
  ROS_EXPECT(index < xs.size(), "peak index out of range");
  Peak p;
  p.index = index;
  p.value = xs[index];
  p.refined_index = static_cast<double>(index);
  p.refined_value = xs[index];
  if (index == 0 || index + 1 >= xs.size()) return p;
  const double a = xs[index - 1];
  const double b = xs[index];
  const double c = xs[index + 1];
  const double denom = a - 2.0 * b + c;
  if (std::abs(denom) < 1e-30) return p;
  const double delta = 0.5 * (a - c) / denom;
  if (std::abs(delta) <= 1.0) {
    p.refined_index = static_cast<double>(index) + delta;
    p.refined_value = b - 0.25 * (a - c) * delta;
  }
  return p;
}

std::vector<Peak> find_peaks(std::span<const double> xs,
                             const PeakOptions& opts) {
  std::vector<Peak> candidates;
  const std::size_t n = xs.size();
  for (std::size_t i = 0; i < n; ++i) {
    const bool left_ok = (i == 0) || xs[i] > xs[i - 1];
    const bool right_ok = (i + 1 == n) || xs[i] >= xs[i + 1];
    if (left_ok && right_ok && xs[i] >= opts.min_value) {
      candidates.push_back(refine_peak(xs, i));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });

  // Greedy non-maximum suppression by index separation.
  std::vector<Peak> kept;
  for (const Peak& p : candidates) {
    const bool clash = std::any_of(
        kept.begin(), kept.end(), [&](const Peak& q) {
          const auto d = (p.index > q.index) ? p.index - q.index
                                             : q.index - p.index;
          return d < opts.min_separation;
        });
    if (!clash) {
      kept.push_back(p);
      if (kept.size() >= opts.max_peaks) break;
    }
  }
  return kept;
}

}  // namespace ros::dsp
