#include "ros/dsp/cfar.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::dsp {

using ros::common::db_to_linear;
using ros::common::linear_to_db;

std::vector<CfarDetection> ca_cfar(std::span<const double> power,
                                   const CfarOptions& opts) {
  ROS_EXPECT(opts.training_cells >= 1, "need at least one training cell");
  std::vector<CfarDetection> out;
  const std::size_t n = power.size();
  const double factor = db_to_linear(opts.threshold_db);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    std::size_t count = 0;
    // Leading side.
    for (std::size_t k = 1; k <= opts.training_cells; ++k) {
      const std::size_t off = opts.guard_cells + k;
      if (i >= off) {
        sum += power[i - off];
        ++count;
      }
      if (i + off < n) {
        sum += power[i + off];
        ++count;
      }
    }
    if (count == 0) continue;
    const double noise = sum / static_cast<double>(count);
    const bool local_max =
        (i == 0 || power[i] > power[i - 1]) &&
        (i + 1 == n || power[i] >= power[i + 1]);
    if (local_max && power[i] > noise * factor) {
      CfarDetection d;
      d.index = i;
      d.value = power[i];
      d.noise_level = noise;
      d.snr_db = linear_to_db(power[i] / std::max(noise, 1e-300));
      out.push_back(d);
    }
  }
  return out;
}

}  // namespace ros::dsp
