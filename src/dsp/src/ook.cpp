#include "ros/dsp/ook.hpp"

#include <cmath>
#include <vector>

#include "ros/common/expect.hpp"
#include "ros/common/mathx.hpp"
#include "ros/common/units.hpp"

namespace ros::dsp {

using namespace ros::common;

double ook_snr(std::span<const double> one_amplitudes,
               std::span<const double> zero_amplitudes) {
  ROS_EXPECT(!one_amplitudes.empty(), "need at least one '1' sample");
  const double mu1 = mean(one_amplitudes);
  const double mu0 = zero_amplitudes.empty() ? 0.0 : mean(zero_amplitudes);

  // Pooled deviation of all samples around their class means.
  std::vector<double> dev;
  dev.reserve(one_amplitudes.size() + zero_amplitudes.size());
  for (double a : one_amplitudes) dev.push_back(a - mu1);
  for (double a : zero_amplitudes) dev.push_back(a - mu0);
  double sigma2 = variance(dev);
  if (sigma2 <= 0.0) sigma2 = 1e-12 * (mu1 - mu0) * (mu1 - mu0) + 1e-300;
  return (mu1 - mu0) * (mu1 - mu0) / sigma2;
}

double ook_ber(double snr_linear) {
  ROS_EXPECT(snr_linear >= 0.0, "SNR must be non-negative");
  return 0.5 * std::erfc(std::sqrt(snr_linear) / (2.0 * std::sqrt(2.0)));
}

double ook_ber_from_db(double snr_db) {
  return ook_ber(db_to_linear(snr_db));
}

double ook_snr_for_ber(double ber) {
  ROS_EXPECT(ber > 0.0 && ber < 0.5, "BER must be in (0, 0.5)");
  double lo = 0.0;
  double hi = 1e6;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (ook_ber(mid) > ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ros::dsp
