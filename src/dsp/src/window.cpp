#include "ros/dsp/window.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::dsp {

using ros::common::kPi;

std::vector<double> make_window(Window w, std::size_t n) {
  ROS_EXPECT(n >= 1, "window length must be positive");
  std::vector<double> out(n, 1.0);
  if (n == 1 || w == Window::rectangular) return out;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / denom;
    switch (w) {
      case Window::hann:
        out[i] = 0.5 - 0.5 * std::cos(2.0 * kPi * t);
        break;
      case Window::hamming:
        out[i] = 0.54 - 0.46 * std::cos(2.0 * kPi * t);
        break;
      case Window::blackman:
        out[i] = 0.42 - 0.5 * std::cos(2.0 * kPi * t) +
                 0.08 * std::cos(4.0 * kPi * t);
        break;
      case Window::rectangular:
        break;
    }
  }
  return out;
}

void apply_window(std::span<ros::common::cplx> x,
                  std::span<const double> w) {
  ROS_EXPECT(x.size() == w.size(), "window length must match data");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= w[i];
}

double coherent_gain(std::span<const double> w) {
  ROS_EXPECT(!w.empty(), "window must be non-empty");
  double sum = 0.0;
  for (double v : w) sum += v;
  return sum / static_cast<double>(w.size());
}

}  // namespace ros::dsp
