#include "ros/dsp/resample.hpp"

#include <algorithm>
#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/grid.hpp"

namespace ros::dsp {

bool strictly_increasing(std::span<const double> xs) {
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] <= xs[i - 1]) return false;
  }
  return true;
}

double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x) {
  ROS_EXPECT(xs.size() == ys.size(), "x/y size mismatch");
  ROS_EXPECT(!xs.empty(), "interp needs at least one sample");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] * (1.0 - t) + ys[hi] * t;
}

std::vector<double> resample_uniform(std::span<const double> xs,
                                     std::span<const double> ys,
                                     std::size_t n) {
  ROS_EXPECT(xs.size() == ys.size(), "x/y size mismatch");
  ROS_EXPECT(xs.size() >= 2, "need at least two samples to resample");
  ROS_EXPECT(strictly_increasing(xs), "xs must be strictly increasing");
  const auto grid = ros::common::linspace(xs.front(), xs.back(), n);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = interp_linear(xs, ys, grid[i]);
  return out;
}

std::vector<double> resample_bin_average(std::span<const double> xs,
                                         std::span<const double> ys,
                                         std::size_t n) {
  std::vector<double> out(n);
  std::vector<std::size_t> count(n);
  resample_bin_average_into(xs, ys, out, count);
  return out;
}

void resample_bin_average_into(std::span<const double> xs,
                               std::span<const double> ys,
                               std::span<double> out,
                               std::span<std::size_t> count) {
  const std::size_t n = out.size();
  ROS_EXPECT(xs.size() == ys.size(), "x/y size mismatch");
  ROS_EXPECT(xs.size() >= 2, "need at least two samples to resample");
  ROS_EXPECT(n >= 2, "need at least two output cells");
  ROS_EXPECT(count.size() == n, "count scratch size mismatch");
  ROS_EXPECT(strictly_increasing(xs), "xs must be strictly increasing");
  const double lo = xs.front();
  const double span = xs.back() - lo;
  ROS_EXPECT(span > 0.0, "x samples must span a non-zero window");

  // `out` doubles as the bin-sum accumulator before averaging in place.
  std::fill(out.begin(), out.end(), 0.0);
  std::fill(count.begin(), count.end(), std::size_t{0});
  const double scale = static_cast<double>(n - 1) / span;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    auto cell = static_cast<std::size_t>(
        std::lround((xs[i] - lo) * scale));
    cell = std::min(cell, n - 1);
    out[cell] += ys[i];
    ++count[cell];
  }

  // Grid points computed exactly as linspace(lo, xs.back(), n) does so
  // the empty-cell fallback stays bit-identical to the vector overload.
  const double step = (xs.back() - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = count[i] > 0
                 ? out[i] / static_cast<double>(count[i])
                 : interp_linear(xs, ys, lo + step * static_cast<double>(i));
  }
}

}  // namespace ros::dsp
