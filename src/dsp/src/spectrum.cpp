#include "ros/dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ros/common/expect.hpp"
#include "ros/common/mathx.hpp"
#include "ros/dsp/fft.hpp"
#include "ros/dsp/resample.hpp"

namespace ros::dsp {

using ros::common::cplx;

std::size_t whiten_window_size(const SpectrumOptions& opts, std::size_t n) {
  return opts.whiten_window > 0 ? opts.whiten_window
                                : std::max<std::size_t>(5, n / 6);
}

void whiten_envelope_inplace(std::span<double> y, std::size_t window,
                             std::span<double> env_scratch) {
  const std::size_t n = y.size();
  ROS_EXPECT(env_scratch.size() == n, "envelope scratch size mismatch");
  const std::size_t w = window;
  // Centered boxcar moving average as the envelope estimate. The
  // envelope is *subtracted* (then scaled by its mean), never divided
  // out: division would intermodulate residual envelope tones with the
  // coding tones, and on the paper's 1.5-lambda placement grid those
  // intermods land exactly on other coding slots.
  double env_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= w / 2 ? i - w / 2 : 0;
    const std::size_t hi = std::min(n, i + w / 2 + 1);
    double sum = 0.0;
    for (std::size_t k = lo; k < hi; ++k) sum += y[k];
    env_scratch[i] = sum / static_cast<double>(hi - lo);
    env_mean += env_scratch[i];
  }
  env_mean /= static_cast<double>(n);
  if (env_mean > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = (y[i] - env_scratch[i]) / env_mean;
    }
  }
}

double RcsSpectrum::amplitude_at(double spacing) const {
  return interp_linear(spacing_lambda, amplitude, spacing);
}

double RcsSpectrum::max_spacing() const {
  return spacing_lambda.empty() ? 0.0 : spacing_lambda.back();
}

RcsSpectrum rcs_spectrum(std::span<const double> u,
                         std::span<const double> rcs_linear,
                         const SpectrumOptions& opts) {
  ROS_EXPECT(u.size() == rcs_linear.size(), "u/rcs size mismatch");
  ROS_EXPECT(u.size() >= 8, "need at least 8 RCS samples");
  ROS_EXPECT(opts.zero_pad_factor >= 1, "zero pad factor must be >= 1");

  // Sort samples by u; average duplicates are harmless for interp.
  std::vector<std::size_t> order(u.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return u[a] < u[b]; });
  std::vector<double> us;
  std::vector<double> ys;
  us.reserve(u.size());
  ys.reserve(u.size());
  for (std::size_t i : order) {
    if (!us.empty() && u[i] <= us.back()) continue;  // drop non-increasing
    us.push_back(u[i]);
    ys.push_back(rcs_linear[i]);
  }
  ROS_EXPECT(us.size() >= 8, "need at least 8 distinct u samples");

  const double span = us.back() - us.front();
  ROS_EXPECT(span > 0.0, "u samples must span a non-zero window");

  const std::size_t n = opts.resample_points > 0 ? opts.resample_points : 256;
  // Bin averaging: with a 1 kHz frame rate the radar oversamples the
  // RCS tones heavily, and averaging within each u cell beats
  // interpolation by sqrt(samples per cell) in noise.
  std::vector<double> uniform = resample_bin_average(us, ys, n);

  if (opts.tap != nullptr) {
    opts.tap->u_grid.resize(n);
    const double du_grid = span / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      opts.tap->u_grid[i] = us.front() + du_grid * static_cast<double>(i);
    }
    opts.tap->resampled = uniform;
  }

  if (opts.whiten_envelope) {
    std::vector<double> env(n);
    whiten_envelope_inplace(uniform, whiten_window_size(opts, n), env);
  }

  if (opts.remove_mean) {
    const double mu = ros::common::mean(uniform);
    for (double& v : uniform) v -= mu;
  }

  if (opts.tap != nullptr) {
    opts.tap->whitened = uniform;
    opts.tap->fft_size = next_pow2(n * opts.zero_pad_factor);
  }

  const auto win = make_window(opts.window, n);
  const double gain = coherent_gain(win);
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = uniform[i] * win[i];

  const std::size_t nfft = next_pow2(n * opts.zero_pad_factor);
  x.resize(nfft, cplx{0.0, 0.0});
  const auto spec = fft(x);

  RcsSpectrum out;
  out.u_span = span;
  out.resolution_lambda = 0.5 / span;  // lambda/2 per cycle-per-u, / span
  const double du = span / static_cast<double>(n - 1);
  const std::size_t half = nfft / 2;
  out.spacing_lambda.resize(half);
  out.amplitude.resize(half);
  const double norm = 1.0 / (static_cast<double>(n) * gain);
  for (std::size_t b = 0; b < half; ++b) {
    const double cycles_per_u =
        static_cast<double>(b) / (static_cast<double>(nfft) * du);
    out.spacing_lambda[b] = 0.5 * cycles_per_u;  // d/lambda = f_u / 2
    out.amplitude[b] = std::abs(spec[b]) * norm;
  }
  return out;
}

}  // namespace ros::dsp
