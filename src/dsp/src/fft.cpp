#include "ros/dsp/fft.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::dsp {

using ros::common::kPi;

std::size_t next_pow2(std::size_t n) {
  ROS_EXPECT(n >= 1, "size must be positive");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_pow2_inplace(std::vector<cplx>& x, bool inverse) {
  const std::size_t n = x.size();
  ROS_EXPECT(n > 0 && (n & (n - 1)) == 0, "size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi /
                         static_cast<double>(len);
    const cplx wlen = std::polar(1.0, angle);
    for (std::size_t i = 0; i < n; i += len) {
      cplx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = x[i + k];
        const cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= inv;
  }
}

namespace {

/// Bluestein chirp-z transform for arbitrary N.
std::vector<cplx> bluestein(std::span<const cplx> x, bool inverse) {
  const std::size_t n = x.size();
  const double sign = inverse ? 1.0 : -1.0;
  // Chirp: w[k] = exp(sign * j * pi * k^2 / n). Use k^2 mod 2n to keep
  // the argument small for large k.
  std::vector<cplx> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto k2 = static_cast<double>((k * k) % (2 * n));
    chirp[k] = std::polar(1.0, sign * kPi * k2 / static_cast<double>(n));
  }

  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<cplx> a(m, cplx{0.0, 0.0});
  std::vector<cplx> b(m, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = x[k] * chirp[k];
    b[k] = std::conj(chirp[k]);
    if (k != 0) b[m - k] = std::conj(chirp[k]);
  }
  fft_pow2_inplace(a);
  fft_pow2_inplace(b);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2_inplace(a, /*inverse=*/true);

  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : out) v *= inv;
  }
  return out;
}

}  // namespace

std::vector<cplx> fft(std::span<const cplx> x) {
  ROS_EXPECT(!x.empty(), "fft input must be non-empty");
  const std::size_t n = x.size();
  if ((n & (n - 1)) == 0) {
    std::vector<cplx> out(x.begin(), x.end());
    fft_pow2_inplace(out);
    return out;
  }
  return bluestein(x, /*inverse=*/false);
}

std::vector<cplx> ifft(std::span<const cplx> x) {
  ROS_EXPECT(!x.empty(), "ifft input must be non-empty");
  const std::size_t n = x.size();
  if ((n & (n - 1)) == 0) {
    std::vector<cplx> out(x.begin(), x.end());
    fft_pow2_inplace(out, /*inverse=*/true);
    return out;
  }
  return bluestein(x, /*inverse=*/true);
}

std::vector<cplx> fftshift(std::span<const cplx> x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = x[(i + half) % n];
  }
  return out;
}

std::vector<double> magnitude(std::span<const cplx> x) {
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::abs(x[i]);
  return out;
}

std::vector<double> power(std::span<const cplx> x) {
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::norm(x[i]);
  return out;
}

}  // namespace ros::dsp
