#include "ros/dsp/fft.hpp"

#include <cmath>
#include <map>
#include <unordered_map>
#include <utility>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"
#include "ros/simd/simd.hpp"

namespace ros::dsp {

using ros::common::kPi;

std::size_t next_pow2(std::size_t n) {
  ROS_EXPECT(n >= 1, "size must be positive");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

/// Radix-2 plan for one size: the bit-reversal permutation and, for
/// each stage, a contiguous twiddle array (forward and inverse). The
/// classic layout reads twiddle[k * stride] inside the butterfly --
/// a strided gather the simd butterfly can't stream -- so the plan
/// unrolls each stage's twiddles into its own dense array once.
/// The pipeline transforms the same handful of sizes over and over
/// (one per chirp configuration), so recomputing this trig per call
/// dominated small-FFT cost.
struct Pow2Plan {
  std::vector<std::size_t> bitrev;
  /// stage_fwd[s] has len/2 entries for len = 2^(s+1):
  /// exp(-2 pi j k / len), k < len/2. stage_inv is the conjugate.
  std::vector<std::vector<cplx>> stage_fwd;
  std::vector<std::vector<cplx>> stage_inv;
};

/// Plans are cached per thread: lookups need no locking under the
/// ros::exec pool, and identical inputs produce bit-identical plans on
/// every thread, so results never depend on which thread ran the
/// transform. The cache is bounded; an adversarial size sequence just
/// rebuilds plans as before.
const Pow2Plan& pow2_plan(std::size_t n) {
  thread_local std::unordered_map<std::size_t, Pow2Plan> cache;
  if (cache.size() > 32) cache.clear();
  const auto [it, inserted] = cache.try_emplace(n);
  if (inserted) {
    Pow2Plan& plan = it->second;
    plan.bitrev.assign(n, 0);
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      plan.bitrev[i] = j;
    }
    // Base twiddles exp(-2 pi j k / n), gathered per stage so the
    // butterfly reads them contiguously. Gathering (rather than
    // re-deriving per stage) keeps the values bit-identical to the
    // strided-lookup implementation this replaced.
    std::vector<cplx> twiddle(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
      twiddle[k] =
          std::polar(1.0, -2.0 * kPi * static_cast<double>(k) /
                              static_cast<double>(n));
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t stride = n / len;
      std::vector<cplx> fwd(len / 2);
      std::vector<cplx> inv(len / 2);
      for (std::size_t k = 0; k < len / 2; ++k) {
        fwd[k] = twiddle[k * stride];
        inv[k] = std::conj(twiddle[k * stride]);
      }
      plan.stage_fwd.push_back(std::move(fwd));
      plan.stage_inv.push_back(std::move(inv));
    }
  }
  return it->second;
}

}  // namespace

void fft_pow2_inplace(std::span<cplx> x, bool inverse) {
  const std::size_t n = x.size();
  ROS_EXPECT(n > 0 && (n & (n - 1)) == 0, "size must be a power of two");
  const Pow2Plan& plan = pow2_plan(n);
  const auto& bfly = ros::simd::ops().fft_butterfly;

  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = plan.bitrev[i];
    if (i < j) std::swap(x[i], x[j]);
  }

  std::size_t stage = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++stage) {
    const std::vector<cplx>& tw =
        inverse ? plan.stage_inv[stage] : plan.stage_fwd[stage];
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      bfly(&x[i], &x[i + half], tw.data(), half);
    }
  }

  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= inv;
  }
}

void fft_pow2_inplace(std::vector<cplx>& x, bool inverse) {
  fft_pow2_inplace(std::span<cplx>(x), inverse);
}

namespace {

/// Everything in Bluestein's transform that depends only on (n,
/// inverse): the chirp, the padded size m, and the forward FFT of the
/// zero-padded conjugate-chirp kernel. Amortizes two of the three
/// pow2 FFTs plus the chirp trig across repeated same-size calls.
struct BluesteinPlan {
  std::size_t m = 0;
  std::vector<cplx> chirp;
  std::vector<cplx> kernel_fft;
};

const BluesteinPlan& bluestein_plan(std::size_t n, bool inverse) {
  thread_local std::map<std::pair<std::size_t, bool>, BluesteinPlan> cache;
  if (cache.size() > 32) cache.clear();
  const auto [it, inserted] = cache.try_emplace(std::pair{n, inverse});
  if (inserted) {
    BluesteinPlan& plan = it->second;
    const double sign = inverse ? 1.0 : -1.0;
    // Chirp: w[k] = exp(sign * j * pi * k^2 / n). Use k^2 mod 2n to
    // keep the argument small for large k.
    plan.chirp.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      const auto k2 = static_cast<double>((k * k) % (2 * n));
      plan.chirp[k] =
          std::polar(1.0, sign * kPi * k2 / static_cast<double>(n));
    }
    plan.m = next_pow2(2 * n - 1);
    std::vector<cplx> b(plan.m, cplx{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
      b[k] = std::conj(plan.chirp[k]);
      if (k != 0) b[plan.m - k] = std::conj(plan.chirp[k]);
    }
    fft_pow2_inplace(b);
    plan.kernel_fft = std::move(b);
  }
  return it->second;
}

/// Bluestein chirp-z transform for arbitrary N.
std::vector<cplx> bluestein(std::span<const cplx> x, bool inverse) {
  const std::size_t n = x.size();
  const BluesteinPlan& plan = bluestein_plan(n, inverse);

  std::vector<cplx> a(plan.m, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * plan.chirp[k];
  fft_pow2_inplace(a);
  for (std::size_t k = 0; k < plan.m; ++k) a[k] *= plan.kernel_fft[k];
  fft_pow2_inplace(a, /*inverse=*/true);

  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * plan.chirp[k];
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : out) v *= inv;
  }
  return out;
}

}  // namespace

std::vector<cplx> fft(std::span<const cplx> x) {
  ROS_EXPECT(!x.empty(), "fft input must be non-empty");
  const std::size_t n = x.size();
  if ((n & (n - 1)) == 0) {
    std::vector<cplx> out(x.begin(), x.end());
    fft_pow2_inplace(out);
    return out;
  }
  return bluestein(x, /*inverse=*/false);
}

std::vector<cplx> ifft(std::span<const cplx> x) {
  ROS_EXPECT(!x.empty(), "ifft input must be non-empty");
  const std::size_t n = x.size();
  if ((n & (n - 1)) == 0) {
    std::vector<cplx> out(x.begin(), x.end());
    fft_pow2_inplace(out, /*inverse=*/true);
    return out;
  }
  return bluestein(x, /*inverse=*/true);
}

std::vector<cplx> fftshift(std::span<const cplx> x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = x[(i + half) % n];
  }
  return out;
}

std::vector<double> magnitude(std::span<const cplx> x) {
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::abs(x[i]);
  return out;
}

std::vector<double> power(std::span<const cplx> x) {
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::norm(x[i]);
  return out;
}

}  // namespace ros::dsp
