#include "ros/antenna/beam_shaping.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "ros/common/angles.hpp"
#include "ros/common/expect.hpp"
#include "ros/common/grid.hpp"
#include "ros/common/units.hpp"

namespace ros::antenna {

using namespace ros::common;

namespace {

std::vector<double> mirror_weights(const std::vector<double>& half,
                                   int n_units) {
  std::vector<double> full(static_cast<std::size_t>(n_units));
  const int h = (n_units + 1) / 2;
  for (int i = 0; i < h; ++i) {
    // half[0] is the outermost weight, matching Fig. 8a's ordering where
    // the largest phases sit at the stack edges.
    full[static_cast<std::size_t>(i)] = half[static_cast<std::size_t>(i)];
    full[static_cast<std::size_t>(n_units - 1 - i)] =
        half[static_cast<std::size_t>(i)];
  }
  return full;
}

struct WindowStats {
  double ripple_db = 0.0;
  double mean_gain_db = 0.0;
};

// `angles` is precomputed by the caller (once per shape_elevation_beam
// call, not once per DE candidate) and swept in one pass so the
// angle-independent per-unit trig is evaluated once per candidate.
WindowStats window_stats(const PsvaaStack& stack, double hz,
                         std::span<const double> angles) {
  const auto pattern = stack.elevation_pattern_sweep(angles, hz);
  double lo = 1e300;
  double hi = -1e300;
  double sum_db = 0.0;
  for (double pv : pattern) {
    const double db = linear_to_db(std::max(pv, 1e-12));
    lo = std::min(lo, db);
    hi = std::max(hi, db);
    sum_db += db;
  }
  return {hi - lo, sum_db / static_cast<double>(angles.size())};
}

}  // namespace

std::vector<double> paper_example_weights_8() {
  const std::vector<double> deg = {152.9, 37.6, 0.0, 0.0,
                                   0.0,   0.0,  37.6, 152.9};
  std::vector<double> rad(deg.size());
  std::transform(deg.begin(), deg.end(), rad.begin(),
                 [](double d) { return deg_to_rad(d); });
  return rad;
}

double measure_beamwidth_rad(const PsvaaStack& stack, double hz,
                             double span_rad, std::size_t n_samples) {
  ROS_EXPECT(n_samples >= 3, "need at least 3 samples");
  ROS_EXPECT(std::isfinite(span_rad) && span_rad > 0.0,
             "span_rad must be finite and positive");
  const auto angles = linspace(-span_rad / 2.0, span_rad / 2.0, n_samples);
  const std::vector<double> p = stack.elevation_pattern_sweep(angles, hz);
  const std::size_t ipk = static_cast<std::size_t>(
      std::max_element(p.begin(), p.end()) - p.begin());
  const double peak = p[ipk];
  if (peak <= 0.0) return 0.0;
  const double half_power = peak / 2.0;
  // Width of the contiguous region around the peak above -3 dB.
  std::size_t lo = ipk;
  while (lo > 0 && p[lo - 1] >= half_power) --lo;
  std::size_t hi = ipk;
  while (hi + 1 < n_samples && p[hi + 1] >= half_power) ++hi;
  // Interpolate the exact half-power crossings between the last sample
  // inside the region and the first one outside, rather than snapping
  // the edges to the sample grid (a span/n quantization error that
  // dominates for narrow beams or coarse grids). The loop invariants
  // guarantee p[lo-1] < half_power <= p[lo] (and symmetrically on the
  // right), so each divisor is strictly positive.
  double left = angles[lo];
  if (lo > 0) {
    const double f = (half_power - p[lo - 1]) / (p[lo] - p[lo - 1]);
    left = angles[lo - 1] + f * (angles[lo] - angles[lo - 1]);
  }
  double right = angles[hi];
  if (hi + 1 < n_samples) {
    const double f = (p[hi] - half_power) / (p[hi] - p[hi + 1]);
    right = angles[hi] + f * (angles[hi + 1] - angles[hi]);
  }
  return right - left;
}

BeamShapingResult shape_elevation_beam(
    int n_units, const Psvaa::Params& unit, const BeamShapingGoal& goal,
    const ros::em::StriplineStackup* stackup,
    const ros::optim::DeConfig& de_config) {
  ROS_EXPECT(n_units >= 2, "beam shaping needs at least two units");
  ROS_EXPECT(stackup != nullptr, "stackup must not be null");
  ROS_EXPECT(goal.n_samples >= 3,
             "beam shaping needs at least 3 window samples");
  ROS_EXPECT(std::isfinite(goal.target_beamwidth_rad) &&
                 goal.target_beamwidth_rad > 0.0,
             "target beamwidth must be finite and positive");
  ROS_EXPECT(std::isfinite(goal.evaluation_span_rad) &&
                 goal.evaluation_span_rad >= goal.target_beamwidth_rad,
             "evaluation span must be finite and cover the target window");
  const int half = (n_units + 1) / 2;
  const double hz = unit.vaa.design_hz;
  const double half_window = goal.target_beamwidth_rad / 2.0;
  // Fixed evaluation grid, shared by every DE candidate. The objective
  // runs on the ros::exec pool (see ros::optim::minimize), which is
  // safe here: each call builds its own PsvaaStack and only reads the
  // shared grid.
  const auto window_angles =
      linspace(-half_window, half_window, goal.n_samples);

  const auto objective = [&](const std::vector<double>& x) {
    PsvaaStack::Params sp;
    sp.n_units = n_units;
    sp.unit = unit;
    sp.phase_weights_rad = mirror_weights(x, n_units);
    const PsvaaStack stack(sp, stackup);
    const auto stats = window_stats(stack, hz, window_angles);
    // Flat and high: minimize ripple, maximize in-window mean gain.
    return stats.ripple_db - goal.gain_weight * stats.mean_gain_db;
  };

  std::vector<ros::optim::Bounds> bounds(
      static_cast<std::size_t>(half), ros::optim::Bounds{0.0, 2.0 * kPi});
  auto de = ros::optim::minimize(objective, bounds, de_config);

  BeamShapingResult result;
  result.phase_weights_rad = mirror_weights(de.best, n_units);
  result.objective = de.best_value;

  PsvaaStack::Params sp;
  sp.n_units = n_units;
  sp.unit = unit;
  sp.phase_weights_rad = result.phase_weights_rad;
  const PsvaaStack shaped(sp, stackup);
  const auto stats = window_stats(shaped, hz, window_angles);
  result.ripple_db = stats.ripple_db;
  result.mean_gain_db = stats.mean_gain_db;
  result.achieved_beamwidth_rad =
      measure_beamwidth_rad(shaped, hz, goal.evaluation_span_rad * 2.0);
  result.de = std::move(de);
  return result;
}

}  // namespace ros::antenna
