#include "ros/antenna/design_rules.hpp"

#include <algorithm>
#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"

namespace ros::antenna {

using namespace ros::common;

double max_tl_length_spread(double bandwidth_hz,
                            const ros::em::StriplineStackup& stackup) {
  ROS_EXPECT(bandwidth_hz > 0.0, "bandwidth must be positive");
  const double c_t = kSpeedOfLight / std::sqrt(stackup.effective_permittivity());
  return c_t / (4.0 * bandwidth_hz);
}

double min_tl_length_step(double design_hz,
                          const ros::em::StriplineStackup& stackup) {
  const double lambda_g = stackup.guided_wavelength(design_hz);
  const double lambda_0 = wavelength(design_hz);
  // Step must be an integer multiple of lambda_g and at least lambda_0;
  // since lambda_g < lambda_0 < 2 lambda_g on this stackup, that is
  // 2 lambda_g.
  const auto k = static_cast<int>(std::ceil(lambda_0 / lambda_g));
  return static_cast<double>(k) * lambda_g;
}

int optimal_antenna_pairs(double bandwidth_hz, double design_hz,
                          const ros::em::StriplineStackup& stackup) {
  const double spread = max_tl_length_spread(bandwidth_hz, stackup);
  const double step = min_tl_length_step(design_hz, stackup);
  // (n-1) steps must fit inside the spread; at least one pair.
  const int pairs = 1 + static_cast<int>(std::floor(spread / step));
  return std::max(1, pairs);
}

double stack_beamwidth_rad(int n_elements, double spacing_m,
                           double lambda_m) {
  ROS_EXPECT(n_elements >= 1, "need at least one element");
  ROS_EXPECT(spacing_m > 0.0 && lambda_m > 0.0,
             "spacing and wavelength must be positive");
  return 0.886 * lambda_m /
         (2.0 * static_cast<double>(n_elements) * spacing_m);
}

}  // namespace ros::antenna
