#include "ros/antenna/vaa.hpp"

#include <cmath>

#include <algorithm>

#include "ros/common/expect.hpp"
#include "ros/common/random.hpp"
#include "ros/common/units.hpp"
#include "ros/exec/arena.hpp"
#include "ros/simd/simd.hpp"

namespace ros::antenna {

using namespace ros::common;
using ros::em::ApertureCoupling;
using ros::em::TransmissionLine;

VanAttaArray::VanAttaArray(Params p, const ros::em::StriplineStackup* stackup)
    : params_(p),
      stackup_(stackup),
      spacing_m_(p.spacing_m > 0.0 ? p.spacing_m
                                   : wavelength(p.design_hz) / 2.0),
      patch_(p.patch),
      coupling_(p.coupling_stub_m > 0.0
                    ? p.coupling_stub_m
                    : ApertureCoupling::kOptimalStub79GHz,
                stackup) {
  ROS_EXPECT(stackup != nullptr, "stackup must not be null");
  ROS_EXPECT(p.n_pairs >= 1, "need at least one antenna pair");
  ROS_EXPECT(p.design_hz > 0.0, "design frequency must be positive");
  ROS_EXPECT(p.tl_extension_m >= 0.0, "TL extension must be non-negative");

  const double lambda_g = stackup->guided_wavelength(p.design_hz);
  const double base = p.base_tl_m > 0.0 ? p.base_tl_m : 2.0 * lambda_g;
  const double step = p.tl_step_m > 0.0 ? p.tl_step_m : 2.0 * lambda_g;
  lines_.reserve(static_cast<std::size_t>(p.n_pairs));
  for (int i = 0; i < p.n_pairs; ++i) {
    lines_.emplace_back(base + step * static_cast<double>(i) +
                            p.tl_extension_m,
                        stackup);
  }

  ROS_EXPECT(p.implementation_loss_db >= 0.0,
             "implementation loss must be non-negative");
  ROS_EXPECT(p.phase_error_std_rad >= 0.0 && p.amplitude_error_std_db >= 0.0,
             "tolerance stddevs must be non-negative");
  implementation_amplitude_ =
      std::pow(10.0, -p.implementation_loss_db / 20.0);
  Rng rng(p.fabrication_seed);
  element_errors_.reserve(static_cast<std::size_t>(n_elements()));
  element_x_.reserve(static_cast<std::size_t>(n_elements()));
  const double center = 0.5 * static_cast<double>(n_elements() - 1);
  for (int k = 0; k < n_elements(); ++k) {
    const double amp_db = rng.normal(0.0, p.amplitude_error_std_db);
    const double phase = rng.normal(0.0, p.phase_error_std_rad);
    element_errors_.push_back(
        std::polar(std::pow(10.0, amp_db / 20.0), phase));
    element_x_.push_back((static_cast<double>(k) - center) * spacing_m_ +
                         rng.normal(0.0, p.position_error_std_m));
  }

  // SoA wiring tables for the bistatic sum (see header). Element k
  // receives, its TL partner N-1-k re-radiates; pair index counts from
  // the outside in so line 0 is the innermost (shortest) pair, matching
  // the paper's 4.106 / 9.148 / 12.171 mm ordering.
  const int n = n_elements();
  pair_of_k_.reserve(static_cast<std::size_t>(n));
  x_rx_.reserve(static_cast<std::size_t>(n));
  x_tx_.reserve(static_cast<std::size_t>(n));
  err_re_.reserve(static_cast<std::size_t>(n));
  err_im_.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const int partner = n - 1 - k;
    pair_of_k_.push_back(p.n_pairs - 1 - std::min(k, partner));
    x_rx_.push_back(element_x_[static_cast<std::size_t>(k)]);
    x_tx_.push_back(element_x_[static_cast<std::size_t>(partner)]);
    const cplx err = element_errors_[static_cast<std::size_t>(k)] *
                     element_errors_[static_cast<std::size_t>(partner)];
    err_re_.push_back(err.real());
    err_im_.push_back(err.imag());
  }
}

double VanAttaArray::tl_length(int i) const {
  ROS_EXPECT(i >= 0 && i < params_.n_pairs, "pair index out of range");
  return lines_[static_cast<std::size_t>(i)].length();
}

double VanAttaArray::width() const {
  return static_cast<double>(n_elements() - 1) * spacing_m_ +
         wavelength(params_.design_hz) / 2.0;
}

cplx VanAttaArray::bistatic_scattering_length(double az_in_rad,
                                              double az_out_rad,
                                              double hz) const {
  const double lambda = wavelength(hz);
  const double beta = 2.0 * kPi / lambda;
  const double s_elem = lambda * params_.element_gain / (4.0 * kPi);
  const double g_in = patch_.field_pattern(az_in_rad);
  const double g_out = patch_.field_pattern(az_out_rad);
  if (g_in <= 0.0 || g_out <= 0.0) return {0.0, 0.0};
  const double match = std::sqrt(patch_.match_efficiency(hz));
  // The signal crosses the aperture coupling twice (in and out).
  const double coupling = coupling_.efficiency(hz);

  const auto n = static_cast<std::size_t>(n_elements());
  const double sin_in = std::sin(az_in_rad);
  const double sin_out = std::sin(az_out_rad);
  const auto& simd = ros::simd::ops();

  // Hoist the per-pair TL transfer (it depends only on hz), combine it
  // with the precomputed pair fabrication errors into per-element SoA
  // amplitudes, then run the aperture-phase accumulation as one
  // axpby + phase_mac pass over all elements.
  auto& arena = ros::exec::Arena::thread_local_arena();
  ros::exec::Arena::Scope scope(arena);
  const auto n_pairs = static_cast<std::size_t>(params_.n_pairs);
  auto tl_re = arena.alloc_span<double>(n_pairs);
  auto tl_im = arena.alloc_span<double>(n_pairs);
  for (std::size_t p = 0; p < n_pairs; ++p) {
    const cplx tl = lines_[p].transfer(hz);
    tl_re[p] = tl.real();
    tl_im[p] = tl.imag();
  }
  auto a_re = arena.alloc_span<double>(n);
  auto a_im = arena.alloc_span<double>(n);
  auto phase = arena.alloc_span<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Fabrication tolerance applies at the receiving and the
    // re-radiating element independently (folded into err_* already).
    const auto pair = static_cast<std::size_t>(pair_of_k_[k]);
    a_re[k] = tl_re[pair] * err_re_[k] - tl_im[pair] * err_im_[k];
    a_im[k] = tl_re[pair] * err_im_[k] + tl_im[pair] * err_re_[k];
  }
  simd.axpby(beta * sin_in, x_rx_.data(), beta * sin_out, x_tx_.data(),
             phase.data(), n);
  const cplx sum =
      simd.phase_mac(a_re.data(), a_im.data(), phase.data(), n);
  return s_elem * g_in * g_out * match * coupling *
         implementation_amplitude_ * sum;
}

cplx VanAttaArray::scattering_length(double az_rad, double hz) const {
  return bistatic_scattering_length(az_rad, az_rad, hz);
}

double VanAttaArray::rcs_dbsm(double az_rad, double hz) const {
  return rcs_dbsm_from_scattering_length(scattering_length(az_rad, hz));
}

double VanAttaArray::rcs_per_pair_dbsm(double az_rad, double hz) const {
  const double sigma =
      rcs_from_scattering_length(scattering_length(az_rad, hz));
  return linear_to_db(sigma / static_cast<double>(params_.n_pairs));
}

}  // namespace ros::antenna
