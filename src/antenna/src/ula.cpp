#include "ros/antenna/ula.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"
#include "ros/exec/arena.hpp"
#include "ros/simd/simd.hpp"

namespace ros::antenna {

using namespace ros::common;

UniformLinearArray::UniformLinearArray(Params p)
    : params_(p),
      spacing_m_(p.spacing_m > 0.0 ? p.spacing_m
                                   : wavelength(p.design_hz) / 2.0),
      patch_(p.patch) {
  ROS_EXPECT(p.n_elements >= 1, "need at least one element");
  ROS_EXPECT(p.design_hz > 0.0, "design frequency must be positive");
  ROS_EXPECT(p.element_gain > 0.0, "element gain must be positive");
}

cplx UniformLinearArray::bistatic_scattering_length(double az_in_rad,
                                                    double az_out_rad,
                                                    double hz) const {
  const double lambda = wavelength(hz);
  const double beta = 2.0 * kPi / lambda;
  // Single matched antenna's monostatic scattering length is
  // lambda * G / (4 pi); the element pattern applies once on receive and
  // once on re-radiation.
  const double s_elem = lambda * params_.element_gain / (4.0 * kPi);
  const double g_in = patch_.field_pattern(az_in_rad);
  const double g_out = patch_.field_pattern(az_out_rad);
  const double match = std::sqrt(patch_.match_efficiency(hz));

  // Element phases are an arithmetic sequence in k; generate them with
  // linear_phase and sum the unit phasors in one cexp_sum pass.
  const auto n = static_cast<std::size_t>(params_.n_elements);
  const double center = 0.5 * static_cast<double>(params_.n_elements - 1);
  const double u = std::sin(az_in_rad) + std::sin(az_out_rad);
  const double base = beta * (-center * spacing_m_) * u;
  const double step = beta * spacing_m_ * u;
  const auto& simd = ros::simd::ops();
  auto& arena = ros::exec::Arena::thread_local_arena();
  ros::exec::Arena::Scope scope(arena);
  auto phase = arena.alloc_span<double>(n);
  simd.linear_phase(base, step, phase.data(), n);
  const cplx sum = simd.cexp_sum(phase.data(), n);
  return s_elem * g_in * g_out * match * sum;
}

cplx UniformLinearArray::scattering_length(double az_rad, double hz) const {
  return bistatic_scattering_length(az_rad, az_rad, hz);
}

double UniformLinearArray::rcs_dbsm(double az_rad, double hz) const {
  return rcs_dbsm_from_scattering_length(scattering_length(az_rad, hz));
}

}  // namespace ros::antenna
