#include "ros/antenna/psvaa.hpp"

#include <cmath>

#include "ros/common/expect.hpp"
#include "ros/common/mathx.hpp"
#include "ros/common/units.hpp"

namespace ros::antenna {

using namespace ros::common;
using ros::em::Polarization;
using ros::em::ScatterMatrix;

Psvaa::Psvaa(Params p, const ros::em::StriplineStackup* stackup)
    : params_(p), vaa_(p.vaa, stackup) {
  const double lambda = wavelength(p.vaa.design_hz);
  board_width_m_ = p.board_width_m > 0.0 ? p.board_width_m : 3.0 * lambda;
  board_height_m_ =
      p.board_height_m > 0.0 ? p.board_height_m : 0.725 * lambda;
  ROS_EXPECT(p.cross_leak_db >= 0.0, "leak must be non-negative dB");
  ROS_EXPECT(p.structural_loss_db >= 0.0,
             "structural loss must be non-negative dB");
  leak_amplitude_ = std::sqrt(db_to_linear(-p.cross_leak_db));
  structural_amplitude_ = std::sqrt(db_to_linear(-p.structural_loss_db));
}

cplx Psvaa::retro_scattering_length(double az_in_rad, double az_out_rad,
                                    double hz) const {
  const cplx full = vaa_.bistatic_scattering_length(az_in_rad, az_out_rad, hz);
  // CP elements all re-radiate (Sec. 8): no split. Linear polarization
  // switching re-radiates from only half the elements: amplitude halves
  // (-6 dB RCS, Sec. 4.2).
  if (params_.circular) return full;
  return params_.switching ? 0.5 * full : full;
}

cplx Psvaa::structural_scattering_length(double az_in_rad,
                                         double az_out_rad,
                                         double hz) const {
  const double lambda = wavelength(hz);
  const double beta = 2.0 * kPi / lambda;
  const double ci = std::cos(az_in_rad);
  const double co = std::cos(az_out_rad);
  if (ci <= 0.0 || co <= 0.0) return {0.0, 0.0};
  // Flat-plate physical-optics response: peak scattering length A/lambda
  // at the specular direction, sinc falloff with the projected aperture.
  const double area = board_width_m_ * board_height_m_;
  const double arg = 0.5 * beta * board_width_m_ *
                     (std::sin(az_in_rad) + std::sin(az_out_rad));
  return structural_amplitude_ * (area / lambda) * ci * co * sinc(arg);
}

ScatterMatrix Psvaa::scatter_bistatic(double az_in_rad, double az_out_rad,
                                      double hz) const {
  const cplx retro = retro_scattering_length(az_in_rad, az_out_rad, hz);
  const cplx structural =
      structural_scattering_length(az_in_rad, az_out_rad, hz);
  ScatterMatrix s;
  if (params_.circular) {
    // Half-wave-plate retro (preserves circular handedness) riding on a
    // co-polarized structural plate (flips handedness).
    s.hh = retro + structural;
    s.vv = -retro + structural;
    s.hv = s.vh = (retro + structural) * leak_amplitude_;
    return s;
  }
  if (params_.switching) {
    // Antenna mode lands in the cross-polarized channel; the board's
    // specular reflection stays co-polarized. Leakage couples a small
    // residue of each into the other.
    s.hv = s.vh = retro + structural * leak_amplitude_;
    s.hh = s.vv = structural + retro * leak_amplitude_;
  } else {
    s.hh = s.vv = retro + structural;
    s.hv = s.vh = (retro + structural) * leak_amplitude_;
  }
  return s;
}

ScatterMatrix Psvaa::scatter(double az_rad, double hz) const {
  return scatter_bistatic(az_rad, az_rad, hz);
}

double Psvaa::rcs_dbsm(double az_rad, double hz, Polarization tx,
                       Polarization rx) const {
  const cplx s = scatter(az_rad, hz).response(tx, rx);
  return rcs_dbsm_from_scattering_length(s);
}

}  // namespace ros::antenna
