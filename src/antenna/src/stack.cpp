#include "ros/antenna/stack.hpp"

#include <algorithm>
#include <cmath>

#include "ros/antenna/design_rules.hpp"
#include "ros/common/expect.hpp"
#include "ros/common/units.hpp"
#include "ros/exec/arena.hpp"
#include "ros/simd/simd.hpp"

namespace ros::antenna {

using namespace ros::common;
using ros::em::ScatterMatrix;

PsvaaStack::PsvaaStack(Params p, const ros::em::StriplineStackup* stackup)
    : params_(p) {
  ROS_EXPECT(stackup != nullptr, "stackup must not be null");
  ROS_EXPECT(p.n_units >= 1, "need at least one unit");
  ROS_EXPECT(p.phase_weights_rad.empty() ||
                 p.phase_weights_rad.size() ==
                     static_cast<std::size_t>(p.n_units),
             "phase weight count must match n_units");
  ROS_EXPECT(p.height_per_extension >= 0.0 && p.height_per_extension <= 1.0,
             "height_per_extension must be in [0, 1]");

  const double lambda_g = stackup->guided_wavelength(p.unit.vaa.design_hz);

  // Build each unit with its TL extension; track the resulting board
  // heights to place unit centers without overlap.
  std::vector<double> heights;
  heights.reserve(static_cast<std::size_t>(p.n_units));
  units_.reserve(static_cast<std::size_t>(p.n_units));
  for (int i = 0; i < p.n_units; ++i) {
    const double phi = p.phase_weights_rad.empty()
                           ? 0.0
                           : p.phase_weights_rad[static_cast<std::size_t>(i)];
    ROS_EXPECT(phi >= 0.0, "phase weights must be non-negative radians");
    Psvaa::Params unit = p.unit;
    unit.vaa.tl_extension_m = phi / (2.0 * kPi) * lambda_g;
    // The extra line meanders vertically, growing the board.
    const double base_height =
        unit.board_height_m > 0.0
            ? unit.board_height_m
            : 0.725 * wavelength(unit.vaa.design_hz);
    const double grown =
        base_height + p.height_per_extension * unit.vaa.tl_extension_m;
    unit.board_height_m = grown;
    heights.push_back(grown);
    units_.emplace_back(unit, stackup);
  }

  // Stack units edge to edge: center-to-center spacing is the mean of
  // adjacent heights. Then remove the mean so centers_ is zero-centered.
  centers_.resize(static_cast<std::size_t>(p.n_units));
  double z = 0.0;
  for (int i = 0; i < p.n_units; ++i) {
    if (i > 0) {
      z += 0.5 * (heights[static_cast<std::size_t>(i - 1)] +
                  heights[static_cast<std::size_t>(i)]);
    }
    centers_[static_cast<std::size_t>(i)] = z;
  }
  double mean_z = 0.0;
  for (double c : centers_) mean_z += c;
  mean_z /= static_cast<double>(p.n_units);
  for (double& c : centers_) c -= mean_z;
  height_m_ = centers_.back() - centers_.front() +
              0.5 * (heights.front() + heights.back());
}

const Psvaa& PsvaaStack::unit(int i) const {
  ROS_EXPECT(i >= 0 && i < params_.n_units, "unit index out of range");
  return units_[static_cast<std::size_t>(i)];
}

double PsvaaStack::elevation_pattern(double elevation_rad, double hz) const {
  // Route through the sweep so single-angle and swept evaluations share
  // one code path (and therefore agree bitwise under a fixed backend).
  const auto out = elevation_pattern_sweep({&elevation_rad, 1}, hz);
  return out[0];
}

std::vector<double> PsvaaStack::elevation_pattern_sweep(
    std::span<const double> elevation_rad, double hz) const {
  const double beta = 2.0 * kPi / wavelength(hz);
  const auto n_units = static_cast<std::size_t>(params_.n_units);
  const std::size_t n_a = elevation_rad.size();
  // The TL extension phases are already inside each unit's scattering
  // length; evaluate the units at broadside azimuth (independent of the
  // elevation angle, so hoisted out of the sweep) and combine with the
  // round-trip (factor 2) elevation aperture phase.
  std::vector<cplx> unit_resp(n_units);
  double norm = 0.0;
  for (std::size_t i = 0; i < n_units; ++i) {
    unit_resp[i] = units_[i].retro_scattering_length(0.0, 0.0, hz);
    norm += std::abs(unit_resp[i]);
  }
  std::vector<double> out(n_a, 0.0);
  if (norm <= 0.0) return out;

  // SoA sweep: each unit spreads its response over every angle with a
  // scale + cexp_madd pass, keeping the per-angle accumulation order
  // over units identical to the scalar loop this replaces.
  const auto& simd = ros::simd::ops();
  auto& arena = ros::exec::Arena::thread_local_arena();
  ros::exec::Arena::Scope scope(arena);
  auto sin_el = arena.alloc_span<double>(n_a);
  auto cos_scratch = arena.alloc_span<double>(n_a);
  auto phase = arena.alloc_span<double>(n_a);
  auto acc_re = arena.alloc_span<double>(n_a);
  auto acc_im = arena.alloc_span<double>(n_a);
  simd.sincos(elevation_rad.data(), sin_el.data(), cos_scratch.data(),
              n_a);
  std::fill(acc_re.begin(), acc_re.end(), 0.0);
  std::fill(acc_im.begin(), acc_im.end(), 0.0);
  for (std::size_t i = 0; i < n_units; ++i) {
    simd.scale(2.0 * beta * centers_[i], sin_el.data(), phase.data(), n_a);
    simd.cexp_madd(unit_resp[i].real(), unit_resp[i].imag(), phase.data(),
                   acc_re.data(), acc_im.data(), n_a);
  }
  const double inv_norm2 = 1.0 / (norm * norm);
  for (std::size_t a = 0; a < n_a; ++a) {
    out[a] = (acc_re[a] * acc_re[a] + acc_im[a] * acc_im[a]) * inv_norm2;
  }
  return out;
}

double PsvaaStack::uniform_beamwidth_rad(double hz) const {
  const double spacing =
      params_.n_units > 1
          ? (centers_.back() - centers_.front()) /
                static_cast<double>(params_.n_units - 1)
          : height_m_;
  return stack_beamwidth_rad(params_.n_units, spacing, wavelength(hz));
}

cplx PsvaaStack::retro_scattering_length(double az_rad, double distance_m,
                                         double height_offset_m,
                                         double hz) const {
  ROS_EXPECT(distance_m > 0.0, "distance must be positive");
  const double beta = 2.0 * kPi / wavelength(hz);
  const auto n_units = static_cast<std::size_t>(params_.n_units);
  // Scalar geometry per unit (hypot/atan2 have no simd op), then one
  // phase_mac over the SoA amplitudes and round-trip phases.
  const auto& simd = ros::simd::ops();
  auto& arena = ros::exec::Arena::thread_local_arena();
  ros::exec::Arena::Scope scope(arena);
  auto a_re = arena.alloc_span<double>(n_units);
  auto a_im = arena.alloc_span<double>(n_units);
  auto phase = arena.alloc_span<double>(n_units);
  for (std::size_t i = 0; i < n_units; ++i) {
    const double dz = centers_[i] - height_offset_m;
    const double r = std::hypot(distance_m, dz);
    const double elev = std::atan2(dz, distance_m);
    // Element elevation taper (patch pattern applies in elevation too).
    const double g = std::pow(std::max(0.0, std::cos(elev)), 1.3);
    const cplx u = units_[i].retro_scattering_length(az_rad, az_rad, hz);
    a_re[i] = u.real() * g;
    a_im[i] = u.imag() * g;
    // Round-trip phase relative to the stack center plane.
    phase[i] = -2.0 * beta * (r - distance_m);
  }
  return simd.phase_mac(a_re.data(), a_im.data(), phase.data(), n_units);
}

ScatterMatrix PsvaaStack::scatter(double az_rad, double distance_m,
                                  double height_offset_m, double hz) const {
  const cplx retro =
      retro_scattering_length(az_rad, distance_m, height_offset_m, hz);
  // Structural (co-pol) response: the boards form one tall plate; its
  // elevation specularity makes it negligible except near normal. Sum the
  // per-board structural responses with the same exact-range phases.
  const double beta = 2.0 * kPi / wavelength(hz);
  const auto n_units = static_cast<std::size_t>(params_.n_units);
  const auto& simd = ros::simd::ops();
  auto& arena = ros::exec::Arena::thread_local_arena();
  ros::exec::Arena::Scope scope(arena);
  auto s_re = arena.alloc_span<double>(n_units);
  auto s_im = arena.alloc_span<double>(n_units);
  auto phase = arena.alloc_span<double>(n_units);
  for (std::size_t i = 0; i < n_units; ++i) {
    const double dz = centers_[i] - height_offset_m;
    const double r = std::hypot(distance_m, dz);
    const cplx s =
        units_[i].structural_scattering_length(az_rad, az_rad, hz);
    s_re[i] = s.real();
    s_im[i] = s.imag();
    phase[i] = -2.0 * beta * (r - distance_m);
  }
  const cplx structural =
      simd.phase_mac(s_re.data(), s_im.data(), phase.data(), n_units);
  const bool switching = params_.unit.switching;
  const double leak = std::sqrt(db_to_linear(-params_.unit.cross_leak_db));
  ScatterMatrix m;
  if (switching) {
    m.hv = m.vh = retro + structural * leak;
    m.hh = m.vv = structural + retro * leak;
  } else {
    m.hh = m.vv = retro + structural;
    m.hv = m.vh = (retro + structural) * leak;
  }
  return m;
}

double PsvaaStack::rcs_dbsm(double az_rad, double distance_m,
                            double height_offset_m, double hz) const {
  return rcs_dbsm_from_scattering_length(
      retro_scattering_length(az_rad, distance_m, height_offset_m, hz));
}

double PsvaaStack::far_field_distance(double hz) const {
  const double h = height_m_;
  return 2.0 * h * h / wavelength(hz);
}

}  // namespace ros::antenna
