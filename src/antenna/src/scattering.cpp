#include "ros/antenna/scattering.hpp"

#include <cmath>

#include "ros/common/units.hpp"

namespace ros::antenna {

using namespace ros::common;

double rcs_from_scattering_length(cplx s) { return 4.0 * kPi * std::norm(s); }

double rcs_dbsm_from_scattering_length(cplx s) {
  return linear_to_db(rcs_from_scattering_length(s));
}

double scattering_length_for_rcs_dbsm(double rcs_dbsm) {
  return std::sqrt(db_to_linear(rcs_dbsm) / (4.0 * kPi));
}

}  // namespace ros::antenna
