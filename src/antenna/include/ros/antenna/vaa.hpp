// Van Atta Array (VAA) retroreflector model (paper Sec. 4.1).
//
// A VAA is a lambda/2-spaced linear array whose mirror-symmetric elements
// are interconnected by transmission lines differing in length by integer
// multiples of the guided wavelength. A signal received at element k
// re-radiates from element N-1-k, which conjugates the aperture phase and
// steers the reflection back at the source -- for *any* incidence angle
// within the element pattern.
//
// This model captures the effects the paper designs around:
//   * retroreflectivity in the azimuth plane (Fig. 4a),
//   * low bistatic leakage (Fig. 4b),
//   * TL dispersion: unequal physical lengths de-phase away from the
//     design frequency, bounding the useful number of pairs (Fig. 3),
//   * TL and element losses, bounding RCS.
#pragma once

#include <cstdint>
#include <vector>

#include "ros/antenna/scattering.hpp"
#include "ros/common/units.hpp"
#include "ros/em/material.hpp"
#include "ros/em/patch.hpp"
#include "ros/em/transmission_line.hpp"

namespace ros::antenna {

using ros::common::cplx;

class VanAttaArray {
 public:
  struct Params {
    int n_pairs = 3;          ///< antenna pairs; elements = 2 * n_pairs
    double design_hz = 79e9;
    /// Element spacing; 0 = lambda/2 at design frequency.
    double spacing_m = 0.0;
    /// Base (shortest) TL length; 0 = default 2 lambda_g.
    double base_tl_m = 0.0;
    /// Adjacent-TL length step; 0 = default 2 lambda_g (Sec. 4.1).
    double tl_step_m = 0.0;
    /// Element boresight power gain (linear).
    double element_gain = 4.0;
    /// Aperture-coupling stub length; 0 = the paper's optimum.
    double coupling_stub_m = 0.0;
    /// Extra TL length added to *all* lines (beam-shaping phase weights,
    /// Sec. 4.3). Shifts the reflected phase without breaking retro.
    double tl_extension_m = 0.0;
    /// Lumped implementation loss (feed, connector, spurious radiation,
    /// surface roughness) applied to the round trip. Calibrated once so
    /// the PSVAA lands at the paper's HFSS level of ~-43 dBsm (Fig. 5a).
    double implementation_loss_db = 6.0;
    /// Fabrication tolerances: per-element random phase / amplitude
    /// errors, seeded for reproducibility. These set the realistic
    /// bistatic leakage floor of Fig. 4b (ideal arrays null perfectly).
    double phase_error_std_rad = 0.35;
    double amplitude_error_std_db = 0.5;
    /// Etching/placement tolerance on element positions [m]. This is
    /// what breaks the ideal array's perfect bistatic nulls.
    double position_error_std_m = 35e-6;
    std::uint64_t fabrication_seed = 7;
    ros::em::PatchAntenna::Params patch{};
  };

  /// `stackup` must outlive the array.
  VanAttaArray(Params p, const ros::em::StriplineStackup* stackup);

  /// Bistatic retro-mode scattering length: wave in from `az_in_rad`,
  /// observed at `az_out_rad` (broadside-referenced), at `hz`.
  cplx bistatic_scattering_length(double az_in_rad, double az_out_rad,
                                  double hz) const;

  /// Monostatic scattering length (the retroreflected return).
  cplx scattering_length(double az_rad, double hz) const;

  /// Monostatic RCS in dBsm.
  double rcs_dbsm(double az_rad, double hz) const;

  /// RCS per antenna pair in dBsm (the Fig. 3 metric).
  double rcs_per_pair_dbsm(double az_rad, double hz) const;

  int n_pairs() const { return params_.n_pairs; }
  int n_elements() const { return 2 * params_.n_pairs; }
  double spacing() const { return spacing_m_; }

  /// Physical TL length connecting pair `i` (0 = innermost).
  double tl_length(int i) const;

  /// Horizontal footprint of the array (paper: ~3 lambda for 3 pairs).
  double width() const;

  const Params& params() const { return params_; }

 private:
  Params params_;
  const ros::em::StriplineStackup* stackup_;
  double spacing_m_;
  ros::em::PatchAntenna patch_;
  ros::em::ApertureCoupling coupling_;
  std::vector<ros::em::TransmissionLine> lines_;  ///< one per pair
  std::vector<cplx> element_errors_;    ///< fabrication gain/phase errors
  std::vector<double> element_x_;       ///< element positions incl. tolerance
  double implementation_amplitude_ = 1.0;

  // SoA views of the element->partner wiring, precomputed so the
  // bistatic sum is a pure simd pass: element k receives at x_rx_[k],
  // re-radiates from x_tx_[k] through line pair_of_k_[k], with the
  // combined fabrication error err_re_[k] + j err_im_[k].
  std::vector<int> pair_of_k_;
  std::vector<double> x_rx_;
  std::vector<double> x_tx_;
  std::vector<double> err_re_;
  std::vector<double> err_im_;
};

}  // namespace ros::antenna
