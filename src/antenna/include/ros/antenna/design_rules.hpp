// Closed-form VAA design rules from Sec. 4.1 and Eq. 5.
#pragma once

#include "ros/em/material.hpp"

namespace ros::antenna {

/// Maximum TL length spread (longest - shortest) that keeps the phase
/// misalignment across a bandwidth `bandwidth_hz` below pi/2:
///   2*pi * (B / c_t) * delta_l < pi/2  =>  delta_l < c_t / (4 B)
/// Returned in metres. For B = 4 GHz on the RoS stackup this is ~4.94
/// guided wavelengths, the number quoted in the paper.
double max_tl_length_spread(double bandwidth_hz,
                            const ros::em::StriplineStackup& stackup);

/// Adjacent-TL length step: must be a positive multiple of the guided
/// wavelength and at least one free-space wavelength (to route around the
/// lambda/2-spaced antenna pair). Returns 2 * lambda_g (the paper's
/// minimum feasible step) in metres.
double min_tl_length_step(double design_hz,
                          const ros::em::StriplineStackup& stackup);

/// Optimal number of antenna pairs per VAA: floor(spread / step) rounded
/// per the paper, which evaluates to 3 for the automotive band.
int optimal_antenna_pairs(double bandwidth_hz, double design_hz,
                          const ros::em::StriplineStackup& stackup);

/// Elevation beamwidth of a uniform vertical stack (paper Eq. 5), in
/// radians: 0.886 * lambda / (2 * N * d_v). The factor 2 reflects the
/// round-trip (retroreflected) phase.
double stack_beamwidth_rad(int n_elements, double spacing_m,
                           double lambda_m);

}  // namespace ros::antenna
