// Uniform linear array of terminated patch elements -- the paper's
// *specular baseline* (Fig. 4): an ordinary reflective object made of a
// few metal patches, against which the VAA's retroreflectivity is
// demonstrated.
//
// Scattering convention used across ros::antenna: every reflector exposes
// a complex *scattering length* s [metres] such that the RCS is
// sigma = 4*pi*|s|^2 (and the backscattered field scales with s). This
// makes coherent superposition of reflectors a plain complex sum.
#pragma once

#include "ros/antenna/scattering.hpp"
#include "ros/common/units.hpp"
#include "ros/em/patch.hpp"

namespace ros::antenna {

using ros::common::cplx;

class UniformLinearArray {
 public:
  struct Params {
    int n_elements = 6;
    double design_hz = 79e9;
    /// Element spacing; 0 = default lambda/2 at the design frequency.
    double spacing_m = 0.0;
    /// Element boresight power gain (linear). ~6 dBi for a patch.
    double element_gain = 4.0;
    ros::em::PatchAntenna::Params patch{};
  };

  explicit UniformLinearArray(Params p);

  /// Bistatic scattering length: incident from azimuth `az_in_rad`,
  /// observed at `az_out_rad` (angles from broadside), at frequency `hz`.
  /// Each element re-radiates in place, so the response peaks at the
  /// specular direction az_out = -az_in.
  cplx bistatic_scattering_length(double az_in_rad, double az_out_rad,
                                  double hz) const;

  /// Monostatic scattering length (az_out == az_in).
  cplx scattering_length(double az_rad, double hz) const;

  /// Monostatic RCS in dBsm.
  double rcs_dbsm(double az_rad, double hz) const;

  int n_elements() const { return params_.n_elements; }
  double spacing() const { return spacing_m_; }

 private:
  Params params_;
  double spacing_m_;
  ros::em::PatchAntenna patch_;
};

}  // namespace ros::antenna
