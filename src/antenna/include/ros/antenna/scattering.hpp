// Scattering-length convention shared by all reflector models.
//
// Every reflector exposes a complex scattering length s [metres] with
// sigma = 4*pi*|s|^2; backscattered fields scale linearly with s, so
// coherent superposition of reflectors is a plain complex sum.
#pragma once

#include "ros/common/units.hpp"

namespace ros::antenna {

using ros::common::cplx;

/// sigma [m^2] from a scattering length.
double rcs_from_scattering_length(cplx s);

/// sigma in dBsm from a scattering length.
double rcs_dbsm_from_scattering_length(cplx s);

/// Scattering length magnitude for a given RCS in dBsm.
double scattering_length_for_rcs_dbsm(double rcs_dbsm);

}  // namespace ros::antenna
