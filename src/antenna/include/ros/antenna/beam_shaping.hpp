// Elevation beam shaping via differential evolution (paper Sec. 4.3).
//
// The desired flat-top elevation beam is obtained by searching per-PSVAA
// phase weights. A weight is realized as extra TL length, which grows the
// board, which shifts every unit's vertical position, which perturbs the
// phases again -- so the search runs the full PsvaaStack model inside the
// DE objective (no closed form exists, as the paper notes).
#pragma once

#include <vector>

#include "ros/antenna/stack.hpp"
#include "ros/optim/differential_evolution.hpp"

namespace ros::antenna {

struct BeamShapingGoal {
  /// Desired flat-top width (full width) in radians. Paper: ~10 deg.
  double target_beamwidth_rad = 10.0 * ros::common::kPi / 180.0;
  /// Angular extent evaluated by the objective.
  double evaluation_span_rad = 15.0 * ros::common::kPi / 180.0;
  /// Pattern samples across the evaluation span.
  std::size_t n_samples = 121;
  /// Relative weight of mean-gain preservation vs ripple.
  double gain_weight = 1.0;
};

struct BeamShapingResult {
  std::vector<double> phase_weights_rad;  ///< length n_units, symmetric
  double objective = 0.0;
  double ripple_db = 0.0;           ///< max-min pattern within the window
  double mean_gain_db = 0.0;        ///< mean pattern within the window
  double achieved_beamwidth_rad = 0.0;  ///< -3 dB width of the shaped beam
  ros::optim::DeResult de;
};

/// Search mirror-symmetric phase weights for an `n_units` stack of
/// `unit`-type PSVAAs so the elevation beam is flat over the goal width.
BeamShapingResult shape_elevation_beam(
    int n_units, const Psvaa::Params& unit, const BeamShapingGoal& goal,
    const ros::em::StriplineStackup* stackup,
    const ros::optim::DeConfig& de_config = {});

/// The paper's published example weights for an 8-unit stack (Fig. 8a):
/// {152.9, 37.6, 0, 0, 0, 0, 37.6, 152.9} degrees.
std::vector<double> paper_example_weights_8();

/// Measure the -3 dB (relative to in-window mean) beamwidth of a stack's
/// far-field elevation pattern.
double measure_beamwidth_rad(const PsvaaStack& stack, double hz,
                             double span_rad = 0.35,
                             std::size_t n_samples = 701);

}  // namespace ros::antenna
