// Vertical stack of PSVAAs (paper Sec. 4.3).
//
// Stacking raises RCS (+20 log10 N) but creates a pencil beam in
// elevation (Eq. 5), so a per-PSVAA phase weight -- realized by extending
// all three of that PSVAA's transmission lines -- shapes the elevation
// beam. The weight changes the board height, which moves every element's
// vertical position, which changes the round-trip phases: exactly the
// convoluted dependency the paper resolves with DE-GA.
//
// The elevation response is computed from *exact per-element round-trip
// ranges*, so near-field degradation (the 32-element stack's 6.14 m far
// field, Fig. 15b) emerges from geometry rather than a fudge factor.
#pragma once

#include <span>
#include <vector>

#include "ros/antenna/psvaa.hpp"

namespace ros::antenna {

class PsvaaStack {
 public:
  struct Params {
    int n_units = 8;
    /// Per-unit phase weights [rad]; empty = all zero (uniform stack).
    std::vector<double> phase_weights_rad{};
    Psvaa::Params unit{};
    /// Fraction of the extra TL length that folds into extra board
    /// height (the meandered routing); Fig. 8a's annotated heights imply
    /// ~0.5.
    double height_per_extension = 0.5;
  };

  /// `stackup` must outlive the stack.
  PsvaaStack(Params p, const ros::em::StriplineStackup* stackup);

  int n_units() const { return params_.n_units; }

  /// Vertical center positions of the units, centered on 0 [m].
  const std::vector<double>& unit_centers() const { return centers_; }

  /// Total stack height [m] (paper: ~10.8 cm for 32 units).
  double height() const { return height_m_; }

  /// Far-field elevation power pattern, normalized so that a uniform
  /// in-phase stack has 0 dB at boresight. `elevation_rad` is the radar's
  /// elevation angle off the stack normal; the retro round trip doubles
  /// the aperture phase.
  double elevation_pattern(double elevation_rad, double hz) const;

  /// `elevation_pattern` evaluated at every angle in `elevation_rad`
  /// (identical formula and per-unit summation order). The per-unit
  /// responses are angle-independent, so the sweep computes them once
  /// and reuses them: n angles cost n_units unit evaluations instead
  /// of the n * n_units that calling elevation_pattern in a loop pays.
  std::vector<double> elevation_pattern_sweep(
      std::span<const double> elevation_rad, double hz) const;

  /// Half-power beamwidth of the *uniform* equivalent stack (Eq. 5).
  double uniform_beamwidth_rad(double hz) const;

  /// Retro-mode scattering length seen by a monostatic radar at azimuth
  /// `az_rad`, ground distance `distance_m`, and height offset
  /// `height_offset_m` between radar and stack center. Uses exact
  /// per-element ranges (near-field correct).
  cplx retro_scattering_length(double az_rad, double distance_m,
                               double height_offset_m, double hz) const;

  /// Full polarization scattering matrix at the same geometry (includes
  /// the structural co-pol response of the boards).
  ros::em::ScatterMatrix scatter(double az_rad, double distance_m,
                                 double height_offset_m, double hz) const;

  /// Monostatic retro-mode RCS [dBsm] at the given geometry.
  double rcs_dbsm(double az_rad, double distance_m, double height_offset_m,
                  double hz) const;

  /// Far-field distance 2*H^2/lambda of the stack aperture (Eq. 8 applied
  /// to the vertical dimension).
  double far_field_distance(double hz) const;

  const Psvaa& unit(int i) const;

 private:
  Params params_;
  std::vector<Psvaa> units_;     ///< one per vertical element
  std::vector<double> centers_;  ///< vertical centers, zero-mean
  double height_m_ = 0.0;
};

}  // namespace ros::antenna
