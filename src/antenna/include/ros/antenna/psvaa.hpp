// Polarization-switching Van Atta array (PSVAA), paper Sec. 4.2.
//
// Half of the patch elements are rotated 90 deg, so the retroreflected
// wave returns on the orthogonal polarization. Only half of the element
// paths survive the polarization split, costing 20*log10(0.5) = 6 dB of
// RCS relative to the plain VAA -- the price of clutter rejection.
//
// The model composes two scattering mechanisms:
//   * the retro (antenna) mode: the VAA response, routed to the
//     cross-polarized channel when switching is enabled;
//   * the structural mode: ordinary specular reflection from the PCB
//     (patches + ground plane), which stays co-polarized and explains the
//     strong normal-incidence lobe of Fig. 5b / 6b.
// Cross-polarization leakage couples a small (-18 dB) fraction of each
// mode into the other channel, reproducing the residual VAA cross-pol
// response of Fig. 5a.
#pragma once

#include "ros/antenna/scattering.hpp"
#include "ros/antenna/vaa.hpp"
#include "ros/em/polarization.hpp"

namespace ros::antenna {

class Psvaa {
 public:
  struct Params {
    VanAttaArray::Params vaa{};
    /// Enable polarization switching (false models the original VAA for
    /// the Fig. 5 comparison).
    bool switching = true;
    /// Circularly-polarized elements (Sec. 8): the retro mode preserves
    /// circular handedness (half-wave-plate scattering, +H/-V) with NO
    /// 6 dB split -- every element re-radiates. Clutter (and the board's
    /// own structural mode) flips handedness on reflection, so the radar
    /// separates the tag by receiving the same handedness it transmits.
    /// Overrides `switching`.
    bool circular = false;
    /// Board width for the structural (plate) mode; 0 = 3 lambda
    /// (Fig. 7a: 3 lambda = 11.38 mm).
    double board_width_m = 0.0;
    /// Board height; 0 = 0.725 lambda (Fig. 8a baseline element).
    double board_height_m = 0.0;
    /// Cross-polarization leakage below the main response [dB]. A flat
    /// laminate depolarizes far less than rough roadside clutter
    /// (~16-19 dB, Fig. 13a): without a clean board the structural
    /// normal-incidence flash would leak into the decode channel and
    /// bury the coding tones.
    double cross_leak_db = 30.0;
    /// Reduction of the structural (flat-plate) mode relative to an
    /// ideal conductor plate [dB]. The patch layer intercepts part of
    /// the incident energy into the antenna mode and the apertures/edges
    /// scatter incoherently, so the board's specular flash is weaker
    /// than a bare copper plate. Calibrated so the tag's pass-averaged
    /// RSS polarization loss lands at the paper's ~13 dB (Fig. 13a).
    double structural_loss_db = 8.0;
  };

  /// `stackup` must outlive the Psvaa.
  Psvaa(Params p, const ros::em::StriplineStackup* stackup);

  /// Retro-mode (Van Atta) bistatic scattering length, before the
  /// polarization split is applied.
  cplx retro_scattering_length(double az_in_rad, double az_out_rad,
                               double hz) const;

  /// Structural (specular plate) bistatic scattering length.
  cplx structural_scattering_length(double az_in_rad, double az_out_rad,
                                    double hz) const;

  /// Full bistatic polarization scattering matrix.
  ros::em::ScatterMatrix scatter_bistatic(double az_in_rad,
                                          double az_out_rad,
                                          double hz) const;

  /// Monostatic scattering matrix at azimuth `az_rad`.
  ros::em::ScatterMatrix scatter(double az_rad, double hz) const;

  /// Monostatic RCS [dBsm] for a given radar Tx/Rx polarization pair.
  double rcs_dbsm(double az_rad, double hz, ros::em::Polarization tx,
                  ros::em::Polarization rx) const;

  bool switching() const { return params_.switching; }
  double board_width() const { return board_width_m_; }
  double board_height() const { return board_height_m_; }
  const VanAttaArray& vaa() const { return vaa_; }

 private:
  Params params_;
  VanAttaArray vaa_;
  double board_width_m_;
  double board_height_m_;
  double leak_amplitude_;
  double structural_amplitude_ = 1.0;
};

}  // namespace ros::antenna
