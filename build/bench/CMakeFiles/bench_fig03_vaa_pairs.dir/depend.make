# Empty dependencies file for bench_fig03_vaa_pairs.
# This may be replaced when dependencies are built.
