file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_vaa_pairs.dir/bench_fig03_vaa_pairs.cpp.o"
  "CMakeFiles/bench_fig03_vaa_pairs.dir/bench_fig03_vaa_pairs.cpp.o.d"
  "bench_fig03_vaa_pairs"
  "bench_fig03_vaa_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_vaa_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
