file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_fov.dir/bench_fig17_fov.cpp.o"
  "CMakeFiles/bench_fig17_fov.dir/bench_fig17_fov.cpp.o.d"
  "bench_fig17_fov"
  "bench_fig17_fov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_fov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
