# Empty dependencies file for bench_fig16_interference.
# This may be replaced when dependencies are built.
