file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_speed.dir/bench_fig18_speed.cpp.o"
  "CMakeFiles/bench_fig18_speed.dir/bench_fig18_speed.cpp.o.d"
  "bench_fig18_speed"
  "bench_fig18_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
