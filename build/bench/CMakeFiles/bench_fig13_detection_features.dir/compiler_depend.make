# Empty compiler generated dependencies file for bench_fig13_detection_features.
# This may be replaced when dependencies are built.
