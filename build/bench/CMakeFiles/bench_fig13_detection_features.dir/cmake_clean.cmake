file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_detection_features.dir/bench_fig13_detection_features.cpp.o"
  "CMakeFiles/bench_fig13_detection_features.dir/bench_fig13_detection_features.cpp.o.d"
  "bench_fig13_detection_features"
  "bench_fig13_detection_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_detection_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
