file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_psvaa_polarization.dir/bench_fig05_psvaa_polarization.cpp.o"
  "CMakeFiles/bench_fig05_psvaa_polarization.dir/bench_fig05_psvaa_polarization.cpp.o.d"
  "bench_fig05_psvaa_polarization"
  "bench_fig05_psvaa_polarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_psvaa_polarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
