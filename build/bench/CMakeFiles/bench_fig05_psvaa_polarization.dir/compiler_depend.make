# Empty compiler generated dependencies file for bench_fig05_psvaa_polarization.
# This may be replaced when dependencies are built.
