# Empty compiler generated dependencies file for bench_fig06_psvaa_bandwidth.
# This may be replaced when dependencies are built.
