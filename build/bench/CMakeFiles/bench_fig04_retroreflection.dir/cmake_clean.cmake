file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_retroreflection.dir/bench_fig04_retroreflection.cpp.o"
  "CMakeFiles/bench_fig04_retroreflection.dir/bench_fig04_retroreflection.cpp.o.d"
  "bench_fig04_retroreflection"
  "bench_fig04_retroreflection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_retroreflection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
