# Empty dependencies file for bench_fig04_retroreflection.
# This may be replaced when dependencies are built.
