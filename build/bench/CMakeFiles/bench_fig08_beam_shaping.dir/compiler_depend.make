# Empty compiler generated dependencies file for bench_fig08_beam_shaping.
# This may be replaced when dependencies are built.
