file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_beam_shaping.dir/bench_fig08_beam_shaping.cpp.o"
  "CMakeFiles/bench_fig08_beam_shaping.dir/bench_fig08_beam_shaping.cpp.o.d"
  "bench_fig08_beam_shaping"
  "bench_fig08_beam_shaping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_beam_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
