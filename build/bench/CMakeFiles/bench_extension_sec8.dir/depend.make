# Empty dependencies file for bench_extension_sec8.
# This may be replaced when dependencies are built.
