
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_extension_sec8.cpp" "bench/CMakeFiles/bench_extension_sec8.dir/bench_extension_sec8.cpp.o" "gcc" "bench/CMakeFiles/bench_extension_sec8.dir/bench_extension_sec8.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/ros_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/ros_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/ros_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/ros_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/ros_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ros_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ros_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/ros_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
