file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_sec8.dir/bench_extension_sec8.cpp.o"
  "CMakeFiles/bench_extension_sec8.dir/bench_extension_sec8.cpp.o.d"
  "bench_extension_sec8"
  "bench_extension_sec8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_sec8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
