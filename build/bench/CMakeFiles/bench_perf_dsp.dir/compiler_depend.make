# Empty compiler generated dependencies file for bench_perf_dsp.
# This may be replaced when dependencies are built.
