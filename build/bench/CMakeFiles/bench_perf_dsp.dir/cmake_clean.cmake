file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_dsp.dir/bench_perf_dsp.cpp.o"
  "CMakeFiles/bench_perf_dsp.dir/bench_perf_dsp.cpp.o.d"
  "bench_perf_dsp"
  "bench_perf_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
