# Empty compiler generated dependencies file for bench_sec53_link_budget.
# This may be replaced when dependencies are built.
