file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_link_budget.dir/bench_sec53_link_budget.cpp.o"
  "CMakeFiles/bench_sec53_link_budget.dir/bench_sec53_link_budget.cpp.o.d"
  "bench_sec53_link_budget"
  "bench_sec53_link_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_link_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
