# Empty compiler generated dependencies file for bench_fig10_spatial_code.
# This may be replaced when dependencies are built.
