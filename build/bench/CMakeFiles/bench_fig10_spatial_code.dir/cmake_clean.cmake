file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_spatial_code.dir/bench_fig10_spatial_code.cpp.o"
  "CMakeFiles/bench_fig10_spatial_code.dir/bench_fig10_spatial_code.cpp.o.d"
  "bench_fig10_spatial_code"
  "bench_fig10_spatial_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_spatial_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
