file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_elevation.dir/bench_fig14_elevation.cpp.o"
  "CMakeFiles/bench_fig14_elevation.dir/bench_fig14_elevation.cpp.o.d"
  "bench_fig14_elevation"
  "bench_fig14_elevation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_elevation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
