# Empty dependencies file for bench_fig14_elevation.
# This may be replaced when dependencies are built.
