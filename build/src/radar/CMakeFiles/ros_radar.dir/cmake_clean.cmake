file(REMOVE_RECURSE
  "CMakeFiles/ros_radar.dir/src/arrays.cpp.o"
  "CMakeFiles/ros_radar.dir/src/arrays.cpp.o.d"
  "CMakeFiles/ros_radar.dir/src/chirp.cpp.o"
  "CMakeFiles/ros_radar.dir/src/chirp.cpp.o.d"
  "CMakeFiles/ros_radar.dir/src/doppler.cpp.o"
  "CMakeFiles/ros_radar.dir/src/doppler.cpp.o.d"
  "CMakeFiles/ros_radar.dir/src/music.cpp.o"
  "CMakeFiles/ros_radar.dir/src/music.cpp.o.d"
  "CMakeFiles/ros_radar.dir/src/processing.cpp.o"
  "CMakeFiles/ros_radar.dir/src/processing.cpp.o.d"
  "CMakeFiles/ros_radar.dir/src/tdm_mimo.cpp.o"
  "CMakeFiles/ros_radar.dir/src/tdm_mimo.cpp.o.d"
  "CMakeFiles/ros_radar.dir/src/waveform.cpp.o"
  "CMakeFiles/ros_radar.dir/src/waveform.cpp.o.d"
  "libros_radar.a"
  "libros_radar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
