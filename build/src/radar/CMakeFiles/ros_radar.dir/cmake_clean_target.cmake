file(REMOVE_RECURSE
  "libros_radar.a"
)
