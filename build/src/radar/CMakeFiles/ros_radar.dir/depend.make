# Empty dependencies file for ros_radar.
# This may be replaced when dependencies are built.
