
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radar/src/arrays.cpp" "src/radar/CMakeFiles/ros_radar.dir/src/arrays.cpp.o" "gcc" "src/radar/CMakeFiles/ros_radar.dir/src/arrays.cpp.o.d"
  "/root/repo/src/radar/src/chirp.cpp" "src/radar/CMakeFiles/ros_radar.dir/src/chirp.cpp.o" "gcc" "src/radar/CMakeFiles/ros_radar.dir/src/chirp.cpp.o.d"
  "/root/repo/src/radar/src/doppler.cpp" "src/radar/CMakeFiles/ros_radar.dir/src/doppler.cpp.o" "gcc" "src/radar/CMakeFiles/ros_radar.dir/src/doppler.cpp.o.d"
  "/root/repo/src/radar/src/music.cpp" "src/radar/CMakeFiles/ros_radar.dir/src/music.cpp.o" "gcc" "src/radar/CMakeFiles/ros_radar.dir/src/music.cpp.o.d"
  "/root/repo/src/radar/src/processing.cpp" "src/radar/CMakeFiles/ros_radar.dir/src/processing.cpp.o" "gcc" "src/radar/CMakeFiles/ros_radar.dir/src/processing.cpp.o.d"
  "/root/repo/src/radar/src/tdm_mimo.cpp" "src/radar/CMakeFiles/ros_radar.dir/src/tdm_mimo.cpp.o" "gcc" "src/radar/CMakeFiles/ros_radar.dir/src/tdm_mimo.cpp.o.d"
  "/root/repo/src/radar/src/waveform.cpp" "src/radar/CMakeFiles/ros_radar.dir/src/waveform.cpp.o" "gcc" "src/radar/CMakeFiles/ros_radar.dir/src/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/ros_em.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ros_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/ros_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/ros_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ros_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
