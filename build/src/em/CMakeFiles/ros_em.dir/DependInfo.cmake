
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/src/material.cpp" "src/em/CMakeFiles/ros_em.dir/src/material.cpp.o" "gcc" "src/em/CMakeFiles/ros_em.dir/src/material.cpp.o.d"
  "/root/repo/src/em/src/patch.cpp" "src/em/CMakeFiles/ros_em.dir/src/patch.cpp.o" "gcc" "src/em/CMakeFiles/ros_em.dir/src/patch.cpp.o.d"
  "/root/repo/src/em/src/pathloss.cpp" "src/em/CMakeFiles/ros_em.dir/src/pathloss.cpp.o" "gcc" "src/em/CMakeFiles/ros_em.dir/src/pathloss.cpp.o.d"
  "/root/repo/src/em/src/polarization.cpp" "src/em/CMakeFiles/ros_em.dir/src/polarization.cpp.o" "gcc" "src/em/CMakeFiles/ros_em.dir/src/polarization.cpp.o.d"
  "/root/repo/src/em/src/transmission_line.cpp" "src/em/CMakeFiles/ros_em.dir/src/transmission_line.cpp.o" "gcc" "src/em/CMakeFiles/ros_em.dir/src/transmission_line.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
