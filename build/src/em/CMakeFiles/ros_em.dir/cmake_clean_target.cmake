file(REMOVE_RECURSE
  "libros_em.a"
)
