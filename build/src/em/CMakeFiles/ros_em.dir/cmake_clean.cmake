file(REMOVE_RECURSE
  "CMakeFiles/ros_em.dir/src/material.cpp.o"
  "CMakeFiles/ros_em.dir/src/material.cpp.o.d"
  "CMakeFiles/ros_em.dir/src/patch.cpp.o"
  "CMakeFiles/ros_em.dir/src/patch.cpp.o.d"
  "CMakeFiles/ros_em.dir/src/pathloss.cpp.o"
  "CMakeFiles/ros_em.dir/src/pathloss.cpp.o.d"
  "CMakeFiles/ros_em.dir/src/polarization.cpp.o"
  "CMakeFiles/ros_em.dir/src/polarization.cpp.o.d"
  "CMakeFiles/ros_em.dir/src/transmission_line.cpp.o"
  "CMakeFiles/ros_em.dir/src/transmission_line.cpp.o.d"
  "libros_em.a"
  "libros_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
