# Empty compiler generated dependencies file for ros_em.
# This may be replaced when dependencies are built.
