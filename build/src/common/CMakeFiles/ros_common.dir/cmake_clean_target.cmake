file(REMOVE_RECURSE
  "libros_common.a"
)
