file(REMOVE_RECURSE
  "CMakeFiles/ros_common.dir/src/angles.cpp.o"
  "CMakeFiles/ros_common.dir/src/angles.cpp.o.d"
  "CMakeFiles/ros_common.dir/src/csv.cpp.o"
  "CMakeFiles/ros_common.dir/src/csv.cpp.o.d"
  "CMakeFiles/ros_common.dir/src/grid.cpp.o"
  "CMakeFiles/ros_common.dir/src/grid.cpp.o.d"
  "CMakeFiles/ros_common.dir/src/mathx.cpp.o"
  "CMakeFiles/ros_common.dir/src/mathx.cpp.o.d"
  "CMakeFiles/ros_common.dir/src/random.cpp.o"
  "CMakeFiles/ros_common.dir/src/random.cpp.o.d"
  "CMakeFiles/ros_common.dir/src/units.cpp.o"
  "CMakeFiles/ros_common.dir/src/units.cpp.o.d"
  "libros_common.a"
  "libros_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
