file(REMOVE_RECURSE
  "CMakeFiles/ros_optim.dir/src/differential_evolution.cpp.o"
  "CMakeFiles/ros_optim.dir/src/differential_evolution.cpp.o.d"
  "libros_optim.a"
  "libros_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
