# Empty compiler generated dependencies file for ros_optim.
# This may be replaced when dependencies are built.
