file(REMOVE_RECURSE
  "libros_optim.a"
)
