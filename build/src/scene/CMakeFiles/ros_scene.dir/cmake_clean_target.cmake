file(REMOVE_RECURSE
  "libros_scene.a"
)
