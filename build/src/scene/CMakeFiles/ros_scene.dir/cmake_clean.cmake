file(REMOVE_RECURSE
  "CMakeFiles/ros_scene.dir/src/corner_reflector.cpp.o"
  "CMakeFiles/ros_scene.dir/src/corner_reflector.cpp.o.d"
  "CMakeFiles/ros_scene.dir/src/fog.cpp.o"
  "CMakeFiles/ros_scene.dir/src/fog.cpp.o.d"
  "CMakeFiles/ros_scene.dir/src/geometry.cpp.o"
  "CMakeFiles/ros_scene.dir/src/geometry.cpp.o.d"
  "CMakeFiles/ros_scene.dir/src/objects.cpp.o"
  "CMakeFiles/ros_scene.dir/src/objects.cpp.o.d"
  "CMakeFiles/ros_scene.dir/src/scene.cpp.o"
  "CMakeFiles/ros_scene.dir/src/scene.cpp.o.d"
  "CMakeFiles/ros_scene.dir/src/tracking.cpp.o"
  "CMakeFiles/ros_scene.dir/src/tracking.cpp.o.d"
  "CMakeFiles/ros_scene.dir/src/trajectory.cpp.o"
  "CMakeFiles/ros_scene.dir/src/trajectory.cpp.o.d"
  "libros_scene.a"
  "libros_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
