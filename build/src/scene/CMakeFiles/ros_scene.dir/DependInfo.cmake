
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scene/src/corner_reflector.cpp" "src/scene/CMakeFiles/ros_scene.dir/src/corner_reflector.cpp.o" "gcc" "src/scene/CMakeFiles/ros_scene.dir/src/corner_reflector.cpp.o.d"
  "/root/repo/src/scene/src/fog.cpp" "src/scene/CMakeFiles/ros_scene.dir/src/fog.cpp.o" "gcc" "src/scene/CMakeFiles/ros_scene.dir/src/fog.cpp.o.d"
  "/root/repo/src/scene/src/geometry.cpp" "src/scene/CMakeFiles/ros_scene.dir/src/geometry.cpp.o" "gcc" "src/scene/CMakeFiles/ros_scene.dir/src/geometry.cpp.o.d"
  "/root/repo/src/scene/src/objects.cpp" "src/scene/CMakeFiles/ros_scene.dir/src/objects.cpp.o" "gcc" "src/scene/CMakeFiles/ros_scene.dir/src/objects.cpp.o.d"
  "/root/repo/src/scene/src/scene.cpp" "src/scene/CMakeFiles/ros_scene.dir/src/scene.cpp.o" "gcc" "src/scene/CMakeFiles/ros_scene.dir/src/scene.cpp.o.d"
  "/root/repo/src/scene/src/tracking.cpp" "src/scene/CMakeFiles/ros_scene.dir/src/tracking.cpp.o" "gcc" "src/scene/CMakeFiles/ros_scene.dir/src/tracking.cpp.o.d"
  "/root/repo/src/scene/src/trajectory.cpp" "src/scene/CMakeFiles/ros_scene.dir/src/trajectory.cpp.o" "gcc" "src/scene/CMakeFiles/ros_scene.dir/src/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/ros_em.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/ros_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/ros_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/ros_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ros_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ros_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
