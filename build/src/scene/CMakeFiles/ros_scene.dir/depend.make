# Empty dependencies file for ros_scene.
# This may be replaced when dependencies are built.
