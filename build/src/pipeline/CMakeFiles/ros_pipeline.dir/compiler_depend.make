# Empty compiler generated dependencies file for ros_pipeline.
# This may be replaced when dependencies are built.
