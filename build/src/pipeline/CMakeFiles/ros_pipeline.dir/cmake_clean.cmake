file(REMOVE_RECURSE
  "CMakeFiles/ros_pipeline.dir/src/dbscan.cpp.o"
  "CMakeFiles/ros_pipeline.dir/src/dbscan.cpp.o.d"
  "CMakeFiles/ros_pipeline.dir/src/features.cpp.o"
  "CMakeFiles/ros_pipeline.dir/src/features.cpp.o.d"
  "CMakeFiles/ros_pipeline.dir/src/interrogator.cpp.o"
  "CMakeFiles/ros_pipeline.dir/src/interrogator.cpp.o.d"
  "CMakeFiles/ros_pipeline.dir/src/odometry.cpp.o"
  "CMakeFiles/ros_pipeline.dir/src/odometry.cpp.o.d"
  "CMakeFiles/ros_pipeline.dir/src/pointcloud.cpp.o"
  "CMakeFiles/ros_pipeline.dir/src/pointcloud.cpp.o.d"
  "CMakeFiles/ros_pipeline.dir/src/rcs_sampler.cpp.o"
  "CMakeFiles/ros_pipeline.dir/src/rcs_sampler.cpp.o.d"
  "CMakeFiles/ros_pipeline.dir/src/tag_detector.cpp.o"
  "CMakeFiles/ros_pipeline.dir/src/tag_detector.cpp.o.d"
  "libros_pipeline.a"
  "libros_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
