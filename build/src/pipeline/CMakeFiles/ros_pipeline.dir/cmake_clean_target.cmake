file(REMOVE_RECURSE
  "libros_pipeline.a"
)
