
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/src/dbscan.cpp" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/dbscan.cpp.o" "gcc" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/dbscan.cpp.o.d"
  "/root/repo/src/pipeline/src/features.cpp" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/features.cpp.o" "gcc" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/features.cpp.o.d"
  "/root/repo/src/pipeline/src/interrogator.cpp" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/interrogator.cpp.o" "gcc" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/interrogator.cpp.o.d"
  "/root/repo/src/pipeline/src/odometry.cpp" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/odometry.cpp.o" "gcc" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/odometry.cpp.o.d"
  "/root/repo/src/pipeline/src/pointcloud.cpp" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/pointcloud.cpp.o" "gcc" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/pointcloud.cpp.o.d"
  "/root/repo/src/pipeline/src/rcs_sampler.cpp" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/rcs_sampler.cpp.o" "gcc" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/rcs_sampler.cpp.o.d"
  "/root/repo/src/pipeline/src/tag_detector.cpp" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/tag_detector.cpp.o" "gcc" "src/pipeline/CMakeFiles/ros_pipeline.dir/src/tag_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ros_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/ros_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/ros_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/ros_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/ros_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/ros_em.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ros_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
