file(REMOVE_RECURSE
  "libros_antenna.a"
)
