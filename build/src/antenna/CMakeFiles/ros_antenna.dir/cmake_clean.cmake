file(REMOVE_RECURSE
  "CMakeFiles/ros_antenna.dir/src/beam_shaping.cpp.o"
  "CMakeFiles/ros_antenna.dir/src/beam_shaping.cpp.o.d"
  "CMakeFiles/ros_antenna.dir/src/design_rules.cpp.o"
  "CMakeFiles/ros_antenna.dir/src/design_rules.cpp.o.d"
  "CMakeFiles/ros_antenna.dir/src/psvaa.cpp.o"
  "CMakeFiles/ros_antenna.dir/src/psvaa.cpp.o.d"
  "CMakeFiles/ros_antenna.dir/src/scattering.cpp.o"
  "CMakeFiles/ros_antenna.dir/src/scattering.cpp.o.d"
  "CMakeFiles/ros_antenna.dir/src/stack.cpp.o"
  "CMakeFiles/ros_antenna.dir/src/stack.cpp.o.d"
  "CMakeFiles/ros_antenna.dir/src/ula.cpp.o"
  "CMakeFiles/ros_antenna.dir/src/ula.cpp.o.d"
  "CMakeFiles/ros_antenna.dir/src/vaa.cpp.o"
  "CMakeFiles/ros_antenna.dir/src/vaa.cpp.o.d"
  "libros_antenna.a"
  "libros_antenna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_antenna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
