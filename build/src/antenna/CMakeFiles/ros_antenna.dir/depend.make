# Empty dependencies file for ros_antenna.
# This may be replaced when dependencies are built.
