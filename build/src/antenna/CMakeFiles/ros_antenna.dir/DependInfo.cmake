
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/antenna/src/beam_shaping.cpp" "src/antenna/CMakeFiles/ros_antenna.dir/src/beam_shaping.cpp.o" "gcc" "src/antenna/CMakeFiles/ros_antenna.dir/src/beam_shaping.cpp.o.d"
  "/root/repo/src/antenna/src/design_rules.cpp" "src/antenna/CMakeFiles/ros_antenna.dir/src/design_rules.cpp.o" "gcc" "src/antenna/CMakeFiles/ros_antenna.dir/src/design_rules.cpp.o.d"
  "/root/repo/src/antenna/src/psvaa.cpp" "src/antenna/CMakeFiles/ros_antenna.dir/src/psvaa.cpp.o" "gcc" "src/antenna/CMakeFiles/ros_antenna.dir/src/psvaa.cpp.o.d"
  "/root/repo/src/antenna/src/scattering.cpp" "src/antenna/CMakeFiles/ros_antenna.dir/src/scattering.cpp.o" "gcc" "src/antenna/CMakeFiles/ros_antenna.dir/src/scattering.cpp.o.d"
  "/root/repo/src/antenna/src/stack.cpp" "src/antenna/CMakeFiles/ros_antenna.dir/src/stack.cpp.o" "gcc" "src/antenna/CMakeFiles/ros_antenna.dir/src/stack.cpp.o.d"
  "/root/repo/src/antenna/src/ula.cpp" "src/antenna/CMakeFiles/ros_antenna.dir/src/ula.cpp.o" "gcc" "src/antenna/CMakeFiles/ros_antenna.dir/src/ula.cpp.o.d"
  "/root/repo/src/antenna/src/vaa.cpp" "src/antenna/CMakeFiles/ros_antenna.dir/src/vaa.cpp.o" "gcc" "src/antenna/CMakeFiles/ros_antenna.dir/src/vaa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/ros_em.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ros_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
