file(REMOVE_RECURSE
  "libros_dsp.a"
)
