file(REMOVE_RECURSE
  "CMakeFiles/ros_dsp.dir/src/cfar.cpp.o"
  "CMakeFiles/ros_dsp.dir/src/cfar.cpp.o.d"
  "CMakeFiles/ros_dsp.dir/src/fft.cpp.o"
  "CMakeFiles/ros_dsp.dir/src/fft.cpp.o.d"
  "CMakeFiles/ros_dsp.dir/src/linalg.cpp.o"
  "CMakeFiles/ros_dsp.dir/src/linalg.cpp.o.d"
  "CMakeFiles/ros_dsp.dir/src/ook.cpp.o"
  "CMakeFiles/ros_dsp.dir/src/ook.cpp.o.d"
  "CMakeFiles/ros_dsp.dir/src/peaks.cpp.o"
  "CMakeFiles/ros_dsp.dir/src/peaks.cpp.o.d"
  "CMakeFiles/ros_dsp.dir/src/resample.cpp.o"
  "CMakeFiles/ros_dsp.dir/src/resample.cpp.o.d"
  "CMakeFiles/ros_dsp.dir/src/spectrum.cpp.o"
  "CMakeFiles/ros_dsp.dir/src/spectrum.cpp.o.d"
  "CMakeFiles/ros_dsp.dir/src/window.cpp.o"
  "CMakeFiles/ros_dsp.dir/src/window.cpp.o.d"
  "libros_dsp.a"
  "libros_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
