# Empty dependencies file for ros_dsp.
# This may be replaced when dependencies are built.
