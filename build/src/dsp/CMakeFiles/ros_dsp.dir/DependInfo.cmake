
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/src/cfar.cpp" "src/dsp/CMakeFiles/ros_dsp.dir/src/cfar.cpp.o" "gcc" "src/dsp/CMakeFiles/ros_dsp.dir/src/cfar.cpp.o.d"
  "/root/repo/src/dsp/src/fft.cpp" "src/dsp/CMakeFiles/ros_dsp.dir/src/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/ros_dsp.dir/src/fft.cpp.o.d"
  "/root/repo/src/dsp/src/linalg.cpp" "src/dsp/CMakeFiles/ros_dsp.dir/src/linalg.cpp.o" "gcc" "src/dsp/CMakeFiles/ros_dsp.dir/src/linalg.cpp.o.d"
  "/root/repo/src/dsp/src/ook.cpp" "src/dsp/CMakeFiles/ros_dsp.dir/src/ook.cpp.o" "gcc" "src/dsp/CMakeFiles/ros_dsp.dir/src/ook.cpp.o.d"
  "/root/repo/src/dsp/src/peaks.cpp" "src/dsp/CMakeFiles/ros_dsp.dir/src/peaks.cpp.o" "gcc" "src/dsp/CMakeFiles/ros_dsp.dir/src/peaks.cpp.o.d"
  "/root/repo/src/dsp/src/resample.cpp" "src/dsp/CMakeFiles/ros_dsp.dir/src/resample.cpp.o" "gcc" "src/dsp/CMakeFiles/ros_dsp.dir/src/resample.cpp.o.d"
  "/root/repo/src/dsp/src/spectrum.cpp" "src/dsp/CMakeFiles/ros_dsp.dir/src/spectrum.cpp.o" "gcc" "src/dsp/CMakeFiles/ros_dsp.dir/src/spectrum.cpp.o.d"
  "/root/repo/src/dsp/src/window.cpp" "src/dsp/CMakeFiles/ros_dsp.dir/src/window.cpp.o" "gcc" "src/dsp/CMakeFiles/ros_dsp.dir/src/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
