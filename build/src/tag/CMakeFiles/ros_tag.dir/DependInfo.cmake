
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tag/src/ask.cpp" "src/tag/CMakeFiles/ros_tag.dir/src/ask.cpp.o" "gcc" "src/tag/CMakeFiles/ros_tag.dir/src/ask.cpp.o.d"
  "/root/repo/src/tag/src/beam_pattern_strawman.cpp" "src/tag/CMakeFiles/ros_tag.dir/src/beam_pattern_strawman.cpp.o" "gcc" "src/tag/CMakeFiles/ros_tag.dir/src/beam_pattern_strawman.cpp.o.d"
  "/root/repo/src/tag/src/capacity.cpp" "src/tag/CMakeFiles/ros_tag.dir/src/capacity.cpp.o" "gcc" "src/tag/CMakeFiles/ros_tag.dir/src/capacity.cpp.o.d"
  "/root/repo/src/tag/src/codec.cpp" "src/tag/CMakeFiles/ros_tag.dir/src/codec.cpp.o" "gcc" "src/tag/CMakeFiles/ros_tag.dir/src/codec.cpp.o.d"
  "/root/repo/src/tag/src/design_io.cpp" "src/tag/CMakeFiles/ros_tag.dir/src/design_io.cpp.o" "gcc" "src/tag/CMakeFiles/ros_tag.dir/src/design_io.cpp.o.d"
  "/root/repo/src/tag/src/ecc.cpp" "src/tag/CMakeFiles/ros_tag.dir/src/ecc.cpp.o" "gcc" "src/tag/CMakeFiles/ros_tag.dir/src/ecc.cpp.o.d"
  "/root/repo/src/tag/src/layout.cpp" "src/tag/CMakeFiles/ros_tag.dir/src/layout.cpp.o" "gcc" "src/tag/CMakeFiles/ros_tag.dir/src/layout.cpp.o.d"
  "/root/repo/src/tag/src/link_budget.cpp" "src/tag/CMakeFiles/ros_tag.dir/src/link_budget.cpp.o" "gcc" "src/tag/CMakeFiles/ros_tag.dir/src/link_budget.cpp.o.d"
  "/root/repo/src/tag/src/rcs_model.cpp" "src/tag/CMakeFiles/ros_tag.dir/src/rcs_model.cpp.o" "gcc" "src/tag/CMakeFiles/ros_tag.dir/src/rcs_model.cpp.o.d"
  "/root/repo/src/tag/src/tag.cpp" "src/tag/CMakeFiles/ros_tag.dir/src/tag.cpp.o" "gcc" "src/tag/CMakeFiles/ros_tag.dir/src/tag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/ros_em.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ros_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/ros_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ros_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
