# Empty compiler generated dependencies file for ros_tag.
# This may be replaced when dependencies are built.
