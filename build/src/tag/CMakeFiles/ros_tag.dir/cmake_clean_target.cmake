file(REMOVE_RECURSE
  "libros_tag.a"
)
