file(REMOVE_RECURSE
  "CMakeFiles/ros_tag.dir/src/ask.cpp.o"
  "CMakeFiles/ros_tag.dir/src/ask.cpp.o.d"
  "CMakeFiles/ros_tag.dir/src/beam_pattern_strawman.cpp.o"
  "CMakeFiles/ros_tag.dir/src/beam_pattern_strawman.cpp.o.d"
  "CMakeFiles/ros_tag.dir/src/capacity.cpp.o"
  "CMakeFiles/ros_tag.dir/src/capacity.cpp.o.d"
  "CMakeFiles/ros_tag.dir/src/codec.cpp.o"
  "CMakeFiles/ros_tag.dir/src/codec.cpp.o.d"
  "CMakeFiles/ros_tag.dir/src/design_io.cpp.o"
  "CMakeFiles/ros_tag.dir/src/design_io.cpp.o.d"
  "CMakeFiles/ros_tag.dir/src/ecc.cpp.o"
  "CMakeFiles/ros_tag.dir/src/ecc.cpp.o.d"
  "CMakeFiles/ros_tag.dir/src/layout.cpp.o"
  "CMakeFiles/ros_tag.dir/src/layout.cpp.o.d"
  "CMakeFiles/ros_tag.dir/src/link_budget.cpp.o"
  "CMakeFiles/ros_tag.dir/src/link_budget.cpp.o.d"
  "CMakeFiles/ros_tag.dir/src/rcs_model.cpp.o"
  "CMakeFiles/ros_tag.dir/src/rcs_model.cpp.o.d"
  "CMakeFiles/ros_tag.dir/src/tag.cpp.o"
  "CMakeFiles/ros_tag.dir/src/tag.cpp.o.d"
  "libros_tag.a"
  "libros_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
