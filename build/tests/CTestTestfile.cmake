# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_em[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_antenna[1]_include.cmake")
include("/root/repo/build/tests/test_tag[1]_include.cmake")
include("/root/repo/build/tests/test_radar[1]_include.cmake")
include("/root/repo/build/tests/test_scene[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
