file(REMOVE_RECURSE
  "CMakeFiles/test_scene.dir/scene/test_corner_reflector.cpp.o"
  "CMakeFiles/test_scene.dir/scene/test_corner_reflector.cpp.o.d"
  "CMakeFiles/test_scene.dir/scene/test_fog.cpp.o"
  "CMakeFiles/test_scene.dir/scene/test_fog.cpp.o.d"
  "CMakeFiles/test_scene.dir/scene/test_geometry.cpp.o"
  "CMakeFiles/test_scene.dir/scene/test_geometry.cpp.o.d"
  "CMakeFiles/test_scene.dir/scene/test_objects.cpp.o"
  "CMakeFiles/test_scene.dir/scene/test_objects.cpp.o.d"
  "CMakeFiles/test_scene.dir/scene/test_scene.cpp.o"
  "CMakeFiles/test_scene.dir/scene/test_scene.cpp.o.d"
  "CMakeFiles/test_scene.dir/scene/test_tracking.cpp.o"
  "CMakeFiles/test_scene.dir/scene/test_tracking.cpp.o.d"
  "CMakeFiles/test_scene.dir/scene/test_trajectory.cpp.o"
  "CMakeFiles/test_scene.dir/scene/test_trajectory.cpp.o.d"
  "test_scene"
  "test_scene.pdb"
  "test_scene[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
