file(REMOVE_RECURSE
  "CMakeFiles/test_em.dir/em/test_circular.cpp.o"
  "CMakeFiles/test_em.dir/em/test_circular.cpp.o.d"
  "CMakeFiles/test_em.dir/em/test_material.cpp.o"
  "CMakeFiles/test_em.dir/em/test_material.cpp.o.d"
  "CMakeFiles/test_em.dir/em/test_patch.cpp.o"
  "CMakeFiles/test_em.dir/em/test_patch.cpp.o.d"
  "CMakeFiles/test_em.dir/em/test_pathloss.cpp.o"
  "CMakeFiles/test_em.dir/em/test_pathloss.cpp.o.d"
  "CMakeFiles/test_em.dir/em/test_polarization.cpp.o"
  "CMakeFiles/test_em.dir/em/test_polarization.cpp.o.d"
  "CMakeFiles/test_em.dir/em/test_transmission_line.cpp.o"
  "CMakeFiles/test_em.dir/em/test_transmission_line.cpp.o.d"
  "test_em"
  "test_em.pdb"
  "test_em[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
