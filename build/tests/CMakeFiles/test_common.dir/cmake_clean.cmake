file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_angles.cpp.o"
  "CMakeFiles/test_common.dir/common/test_angles.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_csv.cpp.o"
  "CMakeFiles/test_common.dir/common/test_csv.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_grid.cpp.o"
  "CMakeFiles/test_common.dir/common/test_grid.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_mathx.cpp.o"
  "CMakeFiles/test_common.dir/common/test_mathx.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_random.cpp.o"
  "CMakeFiles/test_common.dir/common/test_random.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_units.cpp.o"
  "CMakeFiles/test_common.dir/common/test_units.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
