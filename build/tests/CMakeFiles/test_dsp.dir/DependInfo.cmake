
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dsp/test_cfar.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_cfar.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_cfar.cpp.o.d"
  "/root/repo/tests/dsp/test_fft.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o.d"
  "/root/repo/tests/dsp/test_linalg.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_linalg.cpp.o.d"
  "/root/repo/tests/dsp/test_ook.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_ook.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_ook.cpp.o.d"
  "/root/repo/tests/dsp/test_peaks.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_peaks.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_peaks.cpp.o.d"
  "/root/repo/tests/dsp/test_resample.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_resample.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_resample.cpp.o.d"
  "/root/repo/tests/dsp/test_spectrum.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_spectrum.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_spectrum.cpp.o.d"
  "/root/repo/tests/dsp/test_window.cpp" "tests/CMakeFiles/test_dsp.dir/dsp/test_window.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/dsp/test_window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/ros_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/ros_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/ros_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/ros_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/ros_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ros_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ros_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/ros_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
