file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/dsp/test_cfar.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_cfar.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_fft.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_linalg.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_linalg.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_ook.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_ook.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_peaks.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_peaks.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_resample.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_resample.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_spectrum.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_spectrum.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_window.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_window.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
  "test_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
