file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline.dir/pipeline/test_dbscan.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_dbscan.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_features.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_features.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_odometry.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_odometry.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_pointcloud.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_pointcloud.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_rcs_sampler.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_rcs_sampler.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_tag_detector.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_tag_detector.cpp.o.d"
  "test_pipeline"
  "test_pipeline.pdb"
  "test_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
