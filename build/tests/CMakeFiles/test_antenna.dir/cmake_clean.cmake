file(REMOVE_RECURSE
  "CMakeFiles/test_antenna.dir/antenna/test_beam_shaping.cpp.o"
  "CMakeFiles/test_antenna.dir/antenna/test_beam_shaping.cpp.o.d"
  "CMakeFiles/test_antenna.dir/antenna/test_design_rules.cpp.o"
  "CMakeFiles/test_antenna.dir/antenna/test_design_rules.cpp.o.d"
  "CMakeFiles/test_antenna.dir/antenna/test_psvaa.cpp.o"
  "CMakeFiles/test_antenna.dir/antenna/test_psvaa.cpp.o.d"
  "CMakeFiles/test_antenna.dir/antenna/test_stack.cpp.o"
  "CMakeFiles/test_antenna.dir/antenna/test_stack.cpp.o.d"
  "CMakeFiles/test_antenna.dir/antenna/test_ula.cpp.o"
  "CMakeFiles/test_antenna.dir/antenna/test_ula.cpp.o.d"
  "CMakeFiles/test_antenna.dir/antenna/test_vaa.cpp.o"
  "CMakeFiles/test_antenna.dir/antenna/test_vaa.cpp.o.d"
  "test_antenna"
  "test_antenna.pdb"
  "test_antenna[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_antenna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
