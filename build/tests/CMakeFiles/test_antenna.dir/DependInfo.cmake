
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/antenna/test_beam_shaping.cpp" "tests/CMakeFiles/test_antenna.dir/antenna/test_beam_shaping.cpp.o" "gcc" "tests/CMakeFiles/test_antenna.dir/antenna/test_beam_shaping.cpp.o.d"
  "/root/repo/tests/antenna/test_design_rules.cpp" "tests/CMakeFiles/test_antenna.dir/antenna/test_design_rules.cpp.o" "gcc" "tests/CMakeFiles/test_antenna.dir/antenna/test_design_rules.cpp.o.d"
  "/root/repo/tests/antenna/test_psvaa.cpp" "tests/CMakeFiles/test_antenna.dir/antenna/test_psvaa.cpp.o" "gcc" "tests/CMakeFiles/test_antenna.dir/antenna/test_psvaa.cpp.o.d"
  "/root/repo/tests/antenna/test_stack.cpp" "tests/CMakeFiles/test_antenna.dir/antenna/test_stack.cpp.o" "gcc" "tests/CMakeFiles/test_antenna.dir/antenna/test_stack.cpp.o.d"
  "/root/repo/tests/antenna/test_ula.cpp" "tests/CMakeFiles/test_antenna.dir/antenna/test_ula.cpp.o" "gcc" "tests/CMakeFiles/test_antenna.dir/antenna/test_ula.cpp.o.d"
  "/root/repo/tests/antenna/test_vaa.cpp" "tests/CMakeFiles/test_antenna.dir/antenna/test_vaa.cpp.o" "gcc" "tests/CMakeFiles/test_antenna.dir/antenna/test_vaa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/ros_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/ros_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/ros_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/ros_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/ros_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ros_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ros_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/ros_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
