# Empty dependencies file for test_antenna.
# This may be replaced when dependencies are built.
