file(REMOVE_RECURSE
  "CMakeFiles/test_radar.dir/radar/test_arrays.cpp.o"
  "CMakeFiles/test_radar.dir/radar/test_arrays.cpp.o.d"
  "CMakeFiles/test_radar.dir/radar/test_chirp.cpp.o"
  "CMakeFiles/test_radar.dir/radar/test_chirp.cpp.o.d"
  "CMakeFiles/test_radar.dir/radar/test_doppler.cpp.o"
  "CMakeFiles/test_radar.dir/radar/test_doppler.cpp.o.d"
  "CMakeFiles/test_radar.dir/radar/test_music.cpp.o"
  "CMakeFiles/test_radar.dir/radar/test_music.cpp.o.d"
  "CMakeFiles/test_radar.dir/radar/test_processing.cpp.o"
  "CMakeFiles/test_radar.dir/radar/test_processing.cpp.o.d"
  "CMakeFiles/test_radar.dir/radar/test_tdm_mimo.cpp.o"
  "CMakeFiles/test_radar.dir/radar/test_tdm_mimo.cpp.o.d"
  "CMakeFiles/test_radar.dir/radar/test_waveform.cpp.o"
  "CMakeFiles/test_radar.dir/radar/test_waveform.cpp.o.d"
  "test_radar"
  "test_radar.pdb"
  "test_radar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
