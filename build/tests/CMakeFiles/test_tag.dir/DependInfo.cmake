
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tag/test_ask.cpp" "tests/CMakeFiles/test_tag.dir/tag/test_ask.cpp.o" "gcc" "tests/CMakeFiles/test_tag.dir/tag/test_ask.cpp.o.d"
  "/root/repo/tests/tag/test_beam_pattern_strawman.cpp" "tests/CMakeFiles/test_tag.dir/tag/test_beam_pattern_strawman.cpp.o" "gcc" "tests/CMakeFiles/test_tag.dir/tag/test_beam_pattern_strawman.cpp.o.d"
  "/root/repo/tests/tag/test_capacity.cpp" "tests/CMakeFiles/test_tag.dir/tag/test_capacity.cpp.o" "gcc" "tests/CMakeFiles/test_tag.dir/tag/test_capacity.cpp.o.d"
  "/root/repo/tests/tag/test_codec.cpp" "tests/CMakeFiles/test_tag.dir/tag/test_codec.cpp.o" "gcc" "tests/CMakeFiles/test_tag.dir/tag/test_codec.cpp.o.d"
  "/root/repo/tests/tag/test_codec_properties.cpp" "tests/CMakeFiles/test_tag.dir/tag/test_codec_properties.cpp.o" "gcc" "tests/CMakeFiles/test_tag.dir/tag/test_codec_properties.cpp.o.d"
  "/root/repo/tests/tag/test_design_io.cpp" "tests/CMakeFiles/test_tag.dir/tag/test_design_io.cpp.o" "gcc" "tests/CMakeFiles/test_tag.dir/tag/test_design_io.cpp.o.d"
  "/root/repo/tests/tag/test_ecc.cpp" "tests/CMakeFiles/test_tag.dir/tag/test_ecc.cpp.o" "gcc" "tests/CMakeFiles/test_tag.dir/tag/test_ecc.cpp.o.d"
  "/root/repo/tests/tag/test_layout.cpp" "tests/CMakeFiles/test_tag.dir/tag/test_layout.cpp.o" "gcc" "tests/CMakeFiles/test_tag.dir/tag/test_layout.cpp.o.d"
  "/root/repo/tests/tag/test_link_budget.cpp" "tests/CMakeFiles/test_tag.dir/tag/test_link_budget.cpp.o" "gcc" "tests/CMakeFiles/test_tag.dir/tag/test_link_budget.cpp.o.d"
  "/root/repo/tests/tag/test_rcs_model.cpp" "tests/CMakeFiles/test_tag.dir/tag/test_rcs_model.cpp.o" "gcc" "tests/CMakeFiles/test_tag.dir/tag/test_rcs_model.cpp.o.d"
  "/root/repo/tests/tag/test_tag.cpp" "tests/CMakeFiles/test_tag.dir/tag/test_tag.cpp.o" "gcc" "tests/CMakeFiles/test_tag.dir/tag/test_tag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/ros_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/ros_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/ros_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/ros_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/antenna/CMakeFiles/ros_antenna.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ros_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ros_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/ros_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
