file(REMOVE_RECURSE
  "CMakeFiles/test_tag.dir/tag/test_ask.cpp.o"
  "CMakeFiles/test_tag.dir/tag/test_ask.cpp.o.d"
  "CMakeFiles/test_tag.dir/tag/test_beam_pattern_strawman.cpp.o"
  "CMakeFiles/test_tag.dir/tag/test_beam_pattern_strawman.cpp.o.d"
  "CMakeFiles/test_tag.dir/tag/test_capacity.cpp.o"
  "CMakeFiles/test_tag.dir/tag/test_capacity.cpp.o.d"
  "CMakeFiles/test_tag.dir/tag/test_codec.cpp.o"
  "CMakeFiles/test_tag.dir/tag/test_codec.cpp.o.d"
  "CMakeFiles/test_tag.dir/tag/test_codec_properties.cpp.o"
  "CMakeFiles/test_tag.dir/tag/test_codec_properties.cpp.o.d"
  "CMakeFiles/test_tag.dir/tag/test_design_io.cpp.o"
  "CMakeFiles/test_tag.dir/tag/test_design_io.cpp.o.d"
  "CMakeFiles/test_tag.dir/tag/test_ecc.cpp.o"
  "CMakeFiles/test_tag.dir/tag/test_ecc.cpp.o.d"
  "CMakeFiles/test_tag.dir/tag/test_layout.cpp.o"
  "CMakeFiles/test_tag.dir/tag/test_layout.cpp.o.d"
  "CMakeFiles/test_tag.dir/tag/test_link_budget.cpp.o"
  "CMakeFiles/test_tag.dir/tag/test_link_budget.cpp.o.d"
  "CMakeFiles/test_tag.dir/tag/test_rcs_model.cpp.o"
  "CMakeFiles/test_tag.dir/tag/test_rcs_model.cpp.o.d"
  "CMakeFiles/test_tag.dir/tag/test_tag.cpp.o"
  "CMakeFiles/test_tag.dir/tag/test_tag.cpp.o.d"
  "test_tag"
  "test_tag.pdb"
  "test_tag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
