# Empty compiler generated dependencies file for ask_billboard.
# This may be replaced when dependencies are built.
