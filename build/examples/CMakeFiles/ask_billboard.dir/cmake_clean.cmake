file(REMOVE_RECURSE
  "CMakeFiles/ask_billboard.dir/ask_billboard.cpp.o"
  "CMakeFiles/ask_billboard.dir/ask_billboard.cpp.o.d"
  "ask_billboard"
  "ask_billboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ask_billboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
