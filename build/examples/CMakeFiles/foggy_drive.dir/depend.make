# Empty dependencies file for foggy_drive.
# This may be replaced when dependencies are built.
