file(REMOVE_RECURSE
  "CMakeFiles/foggy_drive.dir/foggy_drive.cpp.o"
  "CMakeFiles/foggy_drive.dir/foggy_drive.cpp.o.d"
  "foggy_drive"
  "foggy_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foggy_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
