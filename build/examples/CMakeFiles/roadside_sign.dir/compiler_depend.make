# Empty compiler generated dependencies file for roadside_sign.
# This may be replaced when dependencies are built.
