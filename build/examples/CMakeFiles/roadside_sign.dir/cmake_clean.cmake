file(REMOVE_RECURSE
  "CMakeFiles/roadside_sign.dir/roadside_sign.cpp.o"
  "CMakeFiles/roadside_sign.dir/roadside_sign.cpp.o.d"
  "roadside_sign"
  "roadside_sign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadside_sign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
