# Empty dependencies file for tag_designer.
# This may be replaced when dependencies are built.
