file(REMOVE_RECURSE
  "CMakeFiles/tag_designer.dir/tag_designer.cpp.o"
  "CMakeFiles/tag_designer.dir/tag_designer.cpp.o.d"
  "tag_designer"
  "tag_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
