// Corridor demo: one minute of traffic through a three-tag road
// segment, run through the sharded ros::corridor fleet engine. Shows
// the service-side view of the runtime: per-tag payloads decoded for a
// whole fleet, plus the obs snapshot an operator would scrape —
// throughput (tag reads/s, decode frames/s), read-latency percentiles
// from the corridor.read.ms histogram, and the codebook decoder's cache
// amortization across the fleet.
#include <cstdio>
#include <string>
#include <vector>

#include "ros/corridor/engine.hpp"
#include "ros/obs/metrics.hpp"
#include "ros/tag/codec.hpp"

namespace {

std::string bits_to_string(const std::vector<bool>& bits) {
  std::string s;
  for (bool b : bits) s += b ? '1' : '0';
  return s;
}

}  // namespace

int main() {
  namespace rc = ros::corridor;

  // A 12 m segment with three installations, read by ~60 s of traffic
  // (40 vehicles, one every 1.5 s).
  rc::CorridorSpec spec;
  spec.seed = 7;
  spec.segment_length_m = 12.0;
  spec.tags = {
      rc::TagSpec{.position_m = 3.0, .bits = {true, false, true, true}},
      rc::TagSpec{.position_m = 6.5, .bits = {true, true, false, true}},
      rc::TagSpec{.position_m = 10.0, .bits = {false, true, true, true}},
  };
  spec.traffic.n_vehicles = 40;
  spec.traffic.headway_s = 1.5;
  spec.traffic.min_speed_mps = 1.8;
  spec.traffic.max_speed_mps = 2.6;
  spec.config.frame_stride = 20;  // 50 decode frames per second
  // The codebook matched filter shares one cached template set across
  // every session that reads the same installation — the cache hit
  // rate below is the amortization at fleet scale.
  spec.config.decoder.backend = ros::tag::DecoderBackend::codebook;

  printf("corridor: %zu tags, %zu vehicles, ~%.0f s of traffic\n",
         spec.tags.size(), spec.traffic.n_vehicles,
         static_cast<double>(spec.traffic.n_vehicles) *
             spec.traffic.headway_s);
  const rc::CorridorResult result = rc::run_corridor(spec);
  const rc::CorridorStats& st = result.stats;

  // Per-tag decode tally.
  for (std::size_t t = 0; t < spec.tags.size(); ++t) {
    std::size_t ok = 0;
    std::size_t total = 0;
    for (const auto& r : result.reads) {
      if (r.tag_index != t) continue;
      ++total;
      ok += r.result.decode.bits == spec.tags[t].bits ? 1u : 0u;
    }
    printf("tag %zu @ %.1f m (bits %s): %zu/%zu fleet reads correct\n",
           t, spec.tags[t].position_m,
           bits_to_string(spec.tags[t].bits).c_str(), ok, total);
  }

  // The obs snapshot: what a scrape of the metrics registry shows after
  // (or during) the run.
  const auto snap = ros::obs::MetricsRegistry::global().snapshot();
  double p50 = 0.0;
  double p99 = 0.0;
  for (const auto& h : snap.histograms) {
    if (h.name == "corridor.read.ms") {
      p50 = h.quantile(0.50);
      p99 = h.quantile(0.99);
    }
  }
  double hits = 0.0;
  double misses = 0.0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "pipeline.decoder.codebook.cache_hits") {
      hits = static_cast<double>(value);
    }
    if (name == "pipeline.decoder.codebook.cache_misses") {
      misses = static_cast<double>(value);
    }
  }
  const double wall_s = st.wall_ms / 1000.0;

  printf("\n-- runtime snapshot --\n");
  printf("sim time          %8.1f s   (wall %.2f s)\n", st.sim_time_s,
         wall_s);
  printf("reads completed   %8zu     (%.1f reads/s)\n",
         st.reads_completed,
         wall_s > 0.0 ? static_cast<double>(st.reads_completed) / wall_s
                      : 0.0);
  printf("frames processed  %8zu     (%.0f frames/s)\n",
         st.frames_processed,
         wall_s > 0.0
             ? static_cast<double>(st.frames_processed) / wall_s
             : 0.0);
  printf("read latency      p50 %.0f ms, p99 %.0f ms\n", p50, p99);
  printf("peak concurrency  %8zu sessions (%zu objects created, "
         "%zu rebinds)\n",
         st.peak_active_sessions, st.sessions_created,
         st.sessions_recycled);
  printf("codebook cache    %.1f%% hit rate (%g hits / %g misses)\n",
         hits + misses > 0.0 ? 100.0 * hits / (hits + misses) : 0.0,
         hits, misses);

  if (st.reads_decoded == 0) {
    printf("\nno read decoded -- check the corridor setup\n");
    return 1;
  }
  return 0;
}
