// Adverse-weather drive-bys: decode the same tag in clear air, fog and
// heavy rain, at increasing vehicle speeds -- the conditions that defeat
// camera-based road signs (the paper's core motivation) but not radar.
#include <cstdio>
#include <vector>

#include "ros/common/units.hpp"
#include "ros/em/material.hpp"
#include "ros/pipeline/interrogator.hpp"
#include "ros/scene/fog.hpp"

int main() {
  const auto stackup = ros::em::StriplineStackup::ros_default();
  const std::vector<bool> payload = {true, true, false, true};

  printf("%-11s %-10s %-12s %-10s %s\n", "weather", "speed_mph",
         "frames", "rss_dbm", "decoded");
  bool all_ok = true;
  for (auto weather :
       {ros::scene::Weather::clear, ros::scene::Weather::heavy_fog,
        ros::scene::Weather::heavy_rain}) {
    for (double mph : {10.0, 20.0, 30.0}) {
      ros::scene::Scene world(weather);
      world.add_tag(ros::tag::make_default_tag(payload, &stackup),
                    {{0.0, 0.0}, {0.0, 1.0}, 0.0});
      const ros::scene::StraightDrive drive(
          {.lane_offset_m = 3.0,
           .speed_mps = ros::common::mph_to_mps(mph),
           .start_x_m = -2.5,
           .end_x_m = 2.5});
      const auto r = ros::pipeline::decode_drive(world, drive, {0.0, 0.0});
      const bool ok = r.decode.bits == payload;
      all_ok = all_ok && ok;
      printf("%-11s %-10.0f %-12zu %-10.1f %s\n",
             ros::scene::weather_name(weather), mph, r.samples.size(),
             r.mean_rss_dbm, ok ? "1101 OK" : "FAILED");
    }
  }
  printf("\n%s\n", all_ok ? "all conditions decoded correctly"
                          : "some conditions failed");
  return all_ok ? 0 : 1;
}
