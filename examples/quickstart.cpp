// Quickstart: encode 4 bits into a RoS tag, drive a simulated automotive
// radar past it, detect + decode the tag with the full Sec. 6 pipeline,
// and print the per-stage telemetry.
//
//   $ ./quickstart            # uses bits 1011
//   $ ./quickstart 0110       # any 4-bit pattern
//
// Observability:
//   $ ROS_LOG_LEVEL=debug ./quickstart        # stage-by-stage logfmt on stderr
//   $ ROS_TRACE_FILE=trace.json ./quickstart  # Chrome trace (load in
//                                             # chrome://tracing or ui.perfetto.dev)
#include <cstdio>
#include <string>
#include <vector>

#include "ros/em/material.hpp"
#include "ros/pipeline/interrogator.hpp"
#include "ros/scene/scene.hpp"
#include "ros/scene/trajectory.hpp"
#include "ros/tag/tag.hpp"

int main(int argc, char** argv) {
  // 1. Choose the payload.
  std::vector<bool> bits = {true, false, true, true};
  if (argc > 1 && std::string(argv[1]).size() == 4) {
    for (int i = 0; i < 4; ++i) bits[i] = argv[1][i] == '1';
  }
  printf("encoding bits: %d%d%d%d\n", int(bits[0]), int(bits[1]),
         int(bits[2]), int(bits[3]));

  // 2. Build the tag: the paper's default design -- 4 coding slots at
  // delta_c = 1.5 lambda, 5 possible stacks of 32 beam-shaped PSVAAs on
  // the Rogers 4350B stackup.
  const auto stackup = ros::em::StriplineStackup::ros_default();
  auto tag = ros::tag::make_default_tag(bits, &stackup);
  printf("tag: %d stacks, %.1f cm wide, %.1f cm tall, far field %.1f m\n",
         tag.layout().n_stacks(), tag.layout().width() * 100.0,
         tag.stack_height() * 100.0, tag.far_field_distance());

  // 3. Put it at the roadside and drive past at 3 m lateral distance.
  ros::scene::Scene world;
  world.add_tag(std::move(tag), {{0.0, 0.0}, {0.0, 1.0}, 0.0});
  const ros::scene::StraightDrive drive({.lane_offset_m = 3.0,
                                         .speed_mps = 2.0,
                                         .start_x_m = -2.5,
                                         .end_x_m = 2.5});

  // 4. Interrogate with the full pipeline (TI IWR1443 FMCW parameters):
  // synthesize every radar frame in both Tx polarizations, build the
  // point cloud, cluster, discriminate the tag, then decode its RCS
  // spectrum. frame_stride 5 = a representative 200 Hz frame rate.
  ros::pipeline::InterrogatorConfig cfg;
  cfg.frame_stride = 5;
  const ros::pipeline::Interrogator interrogator(cfg);
  const auto report = interrogator.run(world, drive);

  // 5. Report: detection funnel, stage timings, decoded payload.
  const auto& tel = report.telemetry;
  printf("funnel: %zu frames -> %zu points -> %zu clusters -> "
         "%zu candidates -> %zu tag(s)%s\n",
         tel.n_frames, tel.n_points, tel.n_clusters, tel.n_candidates,
         tel.n_tags, tel.funnel_consistent() ? "" : "  [INCONSISTENT]");
  printf("stage timings (of %.1f ms total):\n", tel.total_ms);
  for (const auto& s : tel.stages) {
    printf("  %-14s %8.2f ms\n", s.stage.c_str(), s.ms);
  }

  if (report.tags.empty()) {
    printf("NO TAG DECODED\n");
    return 1;
  }
  const auto& readout = report.tags.front();
  const auto& quality = tel.tags.front();
  printf("mean spotlighted RSS: %.1f dBm over %zu samples, "
         "read SNR %.1f dB\n",
         quality.mean_rss_dbm, quality.n_samples, quality.snr_db);
  printf("decoded bits:  ");
  for (bool b : readout.decode.bits) printf("%d", int(b));
  printf("\nslot amplitudes (vs threshold %.2f):",
         readout.decode.threshold);
  for (double a : readout.decode.slot_amplitudes) printf(" %.2f", a);
  printf("\n%s\n", readout.decode.bits == bits ? "round trip OK"
                                               : "ROUND TRIP FAILED");
  return readout.decode.bits == bits ? 0 : 1;
}
