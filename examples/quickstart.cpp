// Quickstart: encode 4 bits into a RoS tag, drive a simulated automotive
// radar past it, and decode the bits from the tag's RCS spectrum.
//
//   $ ./quickstart            # uses bits 1011
//   $ ./quickstart 0110       # any 4-bit pattern
#include <cstdio>
#include <string>
#include <vector>

#include "ros/em/material.hpp"
#include "ros/pipeline/interrogator.hpp"
#include "ros/scene/scene.hpp"
#include "ros/scene/trajectory.hpp"
#include "ros/tag/tag.hpp"

int main(int argc, char** argv) {
  // 1. Choose the payload.
  std::vector<bool> bits = {true, false, true, true};
  if (argc > 1 && std::string(argv[1]).size() == 4) {
    for (int i = 0; i < 4; ++i) bits[i] = argv[1][i] == '1';
  }
  printf("encoding bits: %d%d%d%d\n", int(bits[0]), int(bits[1]),
         int(bits[2]), int(bits[3]));

  // 2. Build the tag: the paper's default design -- 4 coding slots at
  // delta_c = 1.5 lambda, 5 possible stacks of 32 beam-shaped PSVAAs on
  // the Rogers 4350B stackup.
  const auto stackup = ros::em::StriplineStackup::ros_default();
  auto tag = ros::tag::make_default_tag(bits, &stackup);
  printf("tag: %d stacks, %.1f cm wide, %.1f cm tall, far field %.1f m\n",
         tag.layout().n_stacks(), tag.layout().width() * 100.0,
         tag.stack_height() * 100.0, tag.far_field_distance());

  // 3. Put it at the roadside and drive past at 3 m lateral distance.
  ros::scene::Scene world;
  world.add_tag(std::move(tag), {{0.0, 0.0}, {0.0, 1.0}, 0.0});
  const ros::scene::StraightDrive drive({.lane_offset_m = 3.0,
                                         .speed_mps = 2.0,
                                         .start_x_m = -2.5,
                                         .end_x_m = 2.5});

  // 4. Interrogate: synthesizes every radar frame (TI IWR1443 FMCW
  // parameters), spotlights the tag, and decodes the RCS spectrum.
  const auto result =
      ros::pipeline::decode_drive(world, drive, {0.0, 0.0});

  printf("mean spotlighted RSS: %.1f dBm over %zu frames\n",
         result.mean_rss_dbm, result.samples.size());
  printf("decoded bits:  ");
  for (bool b : result.decode.bits) printf("%d", int(b));
  printf("\nslot amplitudes (vs threshold %.2f):", result.decode.threshold);
  for (double a : result.decode.slot_amplitudes) printf(" %.2f", a);
  printf("\n%s\n", result.decode.bits == bits ? "round trip OK"
                                              : "ROUND TRIP FAILED");
  return result.decode.bits == bits ? 0 : 1;
}
