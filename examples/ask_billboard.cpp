// ASK billboard: the Sec. 8 capacity extension in action. A single
// 4-slot tag with 4 amplitude levels (stack heights 0/8/16/32 PSVAAs)
// carries 8 bits -- a full byte -- so one roadside tag can broadcast a
// character, and a short row of tags a word.
//
//   $ ./ask_billboard         # transmits "RoS"
//   $ ./ask_billboard HI
#include <cstdio>
#include <cmath>
#include <string>
#include <vector>

#include "ros/common/grid.hpp"
#include "ros/em/material.hpp"
#include "ros/tag/ask.hpp"

namespace {

/// One byte -> four base-4 symbols (little-endian symbol order), with
/// the pilot guarantee: the top level must appear, so bytes whose
/// symbols lack a 3 get their highest symbol promoted and flagged.
std::vector<int> byte_to_symbols(unsigned char byte, bool& exact) {
  std::vector<int> s(4);
  for (int k = 0; k < 4; ++k) s[k] = (byte >> (2 * k)) & 3;
  exact = std::find(s.begin(), s.end(), 3) != s.end();
  if (!exact) {
    // Promote the first maximal symbol to 3 (a real deployment would use
    // a 3-level alphabet or a pilot slot instead).
    auto it = std::max_element(s.begin(), s.end());
    *it = 3;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string message = argc > 1 ? argv[1] : "RoS";
  const auto stackup = ros::em::StriplineStackup::ros_default();
  const ros::tag::AskCodec codec;

  printf("broadcasting \"%s\" -- one byte per tag, %g bits each\n\n",
         message.c_str(), codec.capacity_bits());
  printf("%-6s %-10s %-22s %-10s %s\n", "char", "symbols", "level_ratios",
         "decoded", "verdict");

  bool all_ok = true;
  for (char c : message) {
    bool exact = false;
    const auto symbols =
        byte_to_symbols(static_cast<unsigned char>(c), exact);
    const auto tag = codec.make_tag(symbols, &stackup);

    // Simulate the RCS sweep a drive-by collects (8 m standoff).
    const auto us = ros::common::linspace(-0.45, 0.45, 700);
    std::vector<double> rcs(us.size());
    for (std::size_t i = 0; i < us.size(); ++i) {
      rcs[i] = std::norm(
          tag.retro_scattering_length(std::asin(us[i]), 8.0, 0.0, 79e9));
    }
    const auto r = codec.decode(us, rcs);
    const bool ok = r.symbols == symbols;
    all_ok = all_ok && ok;

    std::string sym_str;
    std::string dec_str;
    std::string ratios;
    for (int k = 0; k < 4; ++k) {
      sym_str += static_cast<char>('0' + symbols[static_cast<std::size_t>(k)]);
      dec_str += static_cast<char>('0' + r.symbols[static_cast<std::size_t>(k)]);
      char buf[8];
      snprintf(buf, sizeof buf, "%.2f ", r.level_ratios[static_cast<std::size_t>(k)]);
      ratios += buf;
    }
    printf("%-6c %-10s %-22s %-10s %s%s\n", c, sym_str.c_str(),
           ratios.c_str(), dec_str.c_str(), ok ? "OK" : "MISMATCH",
           exact ? "" : " (pilot-promoted)");
  }
  printf("\n%s\n", all_ok ? "message decoded" : "errors in message");
  return all_ok ? 0 : 1;
}
