// Roadside sign scenario: a full cluttered street with a RoS tag mounted
// next to legacy infrastructure. Runs the complete Sec. 6 pipeline --
// point cloud, DBSCAN clustering, two-feature tag discrimination,
// spotlight RCS sampling and spatial decoding -- and translates the
// decoded bits into a traffic message, like the paper's Fig. 1 scenario
// ("coding bit 1111 -> traffic light ahead!").
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "ros/em/material.hpp"
#include "ros/pipeline/interrogator.hpp"
#include "ros/scene/objects.hpp"

namespace {

std::string bits_to_string(const std::vector<bool>& bits) {
  std::string s;
  for (bool b : bits) s += b ? '1' : '0';
  return s;
}

const std::map<std::string, const char*> kSignCodes = {
    {"1111", "traffic light ahead"},  {"1011", "speed limit 25 mph"},
    {"1101", "school zone"},          {"0111", "pedestrian crossing"},
    {"1001", "construction ahead"},   {"0101", "merge right"},
};

}  // namespace

int main() {
  const auto stackup = ros::em::StriplineStackup::ros_default();

  // A street scene: tag on its frame, plus the clutter the paper tested
  // against (Fig. 13), all within a few metres.
  ros::scene::Scene world;
  const std::vector<bool> payload = {true, false, true, true};  // 1011
  world.add_tag(ros::tag::make_default_tag(payload, &stackup),
                {{0.0, 0.0}, {0.0, 1.0}, 0.0});
  world.add_clutter(ros::scene::street_lamp_params({2.4, 0.5}));
  world.add_clutter(ros::scene::parking_meter_params({-2.6, 0.2}));
  world.add_clutter(ros::scene::tree_params({5.2, 1.0}));

  const ros::scene::StraightDrive drive({.lane_offset_m = 3.0,
                                         .speed_mps = 3.0,
                                         .start_x_m = -3.0,
                                         .end_x_m = 3.0});

  ros::pipeline::InterrogatorConfig config;
  config.frame_stride = 2;  // 500 Hz effective
  const ros::pipeline::Interrogator interrogator(config);
  const auto report = interrogator.run(world, drive);

  printf("processed %zu frames -> %zu cloud points -> %zu clusters\n",
         report.n_frames, report.cloud.points.size(),
         report.clusters.size());
  printf("%-14s %-10s %-10s %-9s %s\n", "cluster@", "size[m2]",
         "loss[dB]", "points", "verdict");
  for (const auto& c : report.candidates) {
    printf("(%5.2f,%5.2f)  %-10.4f %-10.1f %-9zu %s\n",
           c.cluster.centroid.x, c.cluster.centroid.y, c.cluster.size_m2,
           c.rss_loss_db, c.cluster.n_points,
           c.is_tag ? "ROS TAG" : "clutter");
  }

  for (const auto& tag : report.tags) {
    const std::string code = bits_to_string(tag.decode.bits);
    const auto it = kSignCodes.find(code);
    printf("\ndecoded tag at (%.2f, %.2f): bits %s -> %s\n",
           tag.candidate.cluster.centroid.x,
           tag.candidate.cluster.centroid.y, code.c_str(),
           it != kSignCodes.end() ? it->second : "(unassigned code)");
    printf("expected %s: %s\n", bits_to_string(payload).c_str(),
           tag.decode.bits == payload ? "MATCH" : "MISMATCH");
  }
  if (report.tags.empty()) {
    printf("\nno tag decoded -- check the scene setup\n");
    return 1;
  }
  return 0;
}
