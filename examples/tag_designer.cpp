// Tag design-space explorer: for a requested payload size, walk through
// the paper's design pipeline and print the complete datasheet --
// layout, physical dimensions, far field, supported vehicle speed,
// per-lane stack sizing from the link budget, and a freshly DE-GA
// optimized elevation beam.
//
//   $ ./tag_designer          # 4-bit tag
//   $ ./tag_designer 6        # 6-bit tag
#include <cstdio>
#include <cstdlib>

#include "ros/antenna/beam_shaping.hpp"
#include "ros/antenna/design_rules.hpp"
#include "ros/common/angles.hpp"
#include "ros/common/units.hpp"
#include "ros/em/material.hpp"
#include "ros/tag/capacity.hpp"
#include "ros/tag/layout.hpp"
#include "ros/tag/link_budget.hpp"
#include "ros/tag/tag.hpp"

int main(int argc, char** argv) {
  using namespace ros;
  const int n_bits = argc > 1 ? std::atoi(argv[1]) : 4;
  if (n_bits < 1 || n_bits > 12) {
    printf("bits must be in [1, 12]\n");
    return 1;
  }
  const auto stackup = em::StriplineStackup::ros_default();
  const double lambda = common::wavelength(79e9);

  printf("=== RoS tag datasheet: %d coding bits ===\n\n", n_bits);

  printf("-- substrate --\n");
  printf("stackup eps_eff %.3f, lambda_g %.0f um, TL loss %.2f dB/cm\n",
         stackup.effective_permittivity(),
         stackup.guided_wavelength(79e9) * 1e6,
         stackup.attenuation_db_per_m(79e9) / 100.0);
  printf("VAA design: %d antenna pairs (bandwidth rule, Sec. 4.1)\n\n",
         antenna::optimal_antenna_pairs(4e9, 79e9, stackup));

  tag::LayoutParams lp;
  lp.n_bits = n_bits;
  const auto layout = tag::TagLayout::all_ones(lp);
  printf("-- layout (delta_c = %.1f lambda) --\n", lp.unit_spacing_lambda);
  printf("slot positions (lambda):");
  for (int k = 1; k <= n_bits; ++k) {
    printf(" %+.1f", layout.slot_position(k) / lambda);
  }
  printf("\nwidth %.1f cm (%.1f lambda), far field %.2f m\n\n",
         layout.width() * 100.0, layout.width() / lambda,
         layout.far_field_distance());

  tag::CapacityModel cap;
  cap.n_bits = n_bits;
  printf("-- dynamics --\n");
  printf("max vehicle speed at 1 kHz frames: %.0f mph\n",
         common::mps_to_mph(cap.max_vehicle_speed_mps(1000.0)));
  printf("side-by-side tag spacing at 6 m: %.2f m\n\n",
         cap.min_tag_separation_m(4, 6.0));

  printf("-- link budget / stack sizing --\n");
  const auto ti = tag::RadarLinkBudget::ti_iwr1443();
  printf("TI radar floor %.1f dBm\n", ti.noise_floor_dbm());
  printf("%-18s %-14s %-12s %s\n", "psvaas_per_stack", "stack_rcs_dbsm",
         "max_range_m", "covers");
  for (int n : {8, 16, 32}) {
    antenna::PsvaaStack::Params sp;
    sp.n_units = n;
    sp.phase_weights_rad = tag::default_beam_weights(n);
    const antenna::PsvaaStack stack(sp, &stackup);
    const double far = stack.far_field_distance(79e9) + 4.0;
    const double sigma = stack.rcs_dbsm(0.0, far, 0.0, 79e9);
    const double range = ti.max_range_m(sigma);
    printf("%-18d %-14.1f %-12.1f ~%d lane(s)\n", n, sigma, range,
           std::max(1, static_cast<int>(range / 3.2)));
  }

  printf("\n-- elevation beam shaping (DE-GA, Sec. 4.3) --\n");
  optim::DeConfig de;
  de.population = 24;
  de.max_generations = 40;
  de.patience = 40;
  de.seed = 11;
  const auto shaped = antenna::shape_elevation_beam(8, {}, {}, &stackup, de);
  printf("8-unit stack weights (deg):");
  for (double w : shaped.phase_weights_rad) {
    printf(" %.0f", common::rad_to_deg(w));
  }
  printf("\nachieved beamwidth %.1f deg (ripple %.1f dB) after %zu "
         "objective evaluations\n",
         common::rad_to_deg(shaped.achieved_beamwidth_rad),
         shaped.ripple_db, shaped.de.evaluations);
  return 0;
}
